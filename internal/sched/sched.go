// Package sched implements the five scheduling strategies the paper
// evaluates (§5): CPU-alone, GPU-alone, PERF (best-performance
// partitioning), the Oracle (exhaustive offline search over fixed
// offload ratios), and EAS (the energy-aware scheduler). All strategies
// run whole workloads — every kernel invocation of Table 1's schedules
// — on a freshly booted simulated platform and report the total
// execution time, package energy, and the value of the evaluation
// metric.
package sched

import (
	"context"
	"fmt"
	"time"

	"github.com/hetsched/eas/internal/core"
	"github.com/hetsched/eas/internal/engine"
	"github.com/hetsched/eas/internal/metrics"
	"github.com/hetsched/eas/internal/par"
	"github.com/hetsched/eas/internal/platform"
	"github.com/hetsched/eas/internal/powerchar"
	"github.com/hetsched/eas/internal/trace"
	"github.com/hetsched/eas/internal/workloads"
)

// InterInvocationGap is the simulated host-side time between kernel
// invocations (frontier construction, buffer bookkeeping). It is far
// shorter than the PCU's idle hysteresis, so back-to-back kernels do
// not re-trigger the start-of-kernel transient.
const InterInvocationGap = 200 * time.Microsecond

// Result summarizes one workload run under one strategy.
type Result struct {
	// Strategy, Workload, Platform identify the run.
	Strategy, Workload, Platform string
	// Duration and EnergyJ are whole-application totals.
	Duration time.Duration
	EnergyJ  float64
	// Value is the evaluation metric over the whole run.
	Value float64
	// GPUShare is the fraction of all items that ran on the GPU.
	GPUShare float64
	// OracleAlpha is the winning fixed ratio (Oracle strategy only).
	OracleAlpha float64
	// Invocations is the number of kernel invocations executed.
	Invocations int
}

// Strategy runs a workload on a platform and reports totals.
type Strategy interface {
	// Name is the strategy's display name ("CPU", "GPU", "PERF",
	// "Oracle", "EAS").
	Name() string
	// Run executes the full workload. ctx cancels the run between
	// phases (the Oracle's parallel α sweep and EAS's admission both
	// honour it); the characterization model is used only by
	// strategies that need it (EAS); metric is the evaluation
	// objective.
	Run(ctx context.Context, w workloads.Workload, spec platform.Spec, model *powerchar.Model, metric metrics.Metric, seed int64) (Result, error)
}

// runFixed executes a whole workload at one fixed GPU offload ratio.
func runFixed(w workloads.Workload, spec platform.Spec, alpha float64, seed int64) (time.Duration, float64, float64, int, error) {
	invs, err := w.Schedule(spec.Name, seed)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	p, err := platform.New(spec)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	eng := engine.New(p)
	var total time.Duration
	var energy, gpuItems, allItems float64
	for _, inv := range invs {
		n := float64(inv.N)
		res, err := eng.Run(engine.Phase{
			Kernel:    inv.Kernel,
			GPUItems:  alpha * n,
			PoolItems: (1 - alpha) * n,
		})
		if err != nil {
			return 0, 0, 0, 0, fmt.Errorf("sched: %s at alpha=%v: %w", w.Abbrev, alpha, err)
		}
		total += res.Duration
		energy += res.EnergyJ
		gpuItems += res.GPUItems
		allItems += n
		eng.RunIdle(InterInvocationGap, nil)
	}
	share := 0.0
	if allItems > 0 {
		share = gpuItems / allItems
	}
	return total, energy, share, len(invs), nil
}

// RunFixedTraced executes a whole workload at one fixed offload ratio
// with full power-trace recording — the analysis path behind the
// per-workload detail reports.
func RunFixedTraced(w workloads.Workload, spec platform.Spec, alpha float64, seed int64) (Result, *trace.Set, error) {
	invs, err := w.Schedule(spec.Name, seed)
	if err != nil {
		return Result{}, nil, err
	}
	p, err := platform.New(spec)
	if err != nil {
		return Result{}, nil, err
	}
	eng := engine.New(p)
	tr := trace.NewSet()
	var total time.Duration
	var energy, gpuItems, allItems float64
	for _, inv := range invs {
		n := float64(inv.N)
		res, err := eng.Run(engine.Phase{
			Kernel:    inv.Kernel,
			GPUItems:  alpha * n,
			PoolItems: (1 - alpha) * n,
			Trace:     tr,
		})
		if err != nil {
			return Result{}, nil, err
		}
		total += res.Duration
		energy += res.EnergyJ
		gpuItems += res.GPUItems
		allItems += n
		eng.RunIdle(InterInvocationGap, tr)
	}
	share := 0.0
	if allItems > 0 {
		share = gpuItems / allItems
	}
	return Result{
		Strategy: fmt.Sprintf("alpha=%.2f", alpha), Workload: w.Abbrev, Platform: spec.Name,
		Duration: total, EnergyJ: energy, GPUShare: share, Invocations: len(invs),
	}, tr, nil
}

// fixed is the CPU-alone / GPU-alone strategy.
type fixed struct {
	name  string
	alpha float64
}

// CPUOnly runs everything on the multi-core CPU (TBB-style).
func CPUOnly() Strategy { return fixed{name: "CPU", alpha: 0} }

// GPUOnly runs everything on the GPU through the OpenCL-style queue.
func GPUOnly() Strategy { return fixed{name: "GPU", alpha: 1} }

// FixedAlpha runs everything at one offload ratio (the Oracle's
// building block, also useful for sweeps like Fig. 1).
func FixedAlpha(alpha float64) Strategy {
	return fixed{name: fmt.Sprintf("alpha=%.2f", alpha), alpha: alpha}
}

func (f fixed) Name() string { return f.name }

func (f fixed) Run(_ context.Context, w workloads.Workload, spec platform.Spec, _ *powerchar.Model, metric metrics.Metric, seed int64) (Result, error) {
	dur, energy, share, n, err := runFixed(w, spec, f.alpha, seed)
	if err != nil {
		return Result{}, err
	}
	return Result{
		Strategy: f.name, Workload: w.Abbrev, Platform: spec.Name,
		Duration: dur, EnergyJ: energy,
		Value:       metric.EvalEnergy(energy, dur.Seconds()),
		GPUShare:    share,
		Invocations: n,
	}, nil
}

// oracle exhaustively searches fixed offload ratios.
type oracle struct {
	step float64
}

// Oracle returns the paper's baseline: the best fixed ratio found by
// exhaustive search over α ∈ {0, step, …, 1} (paper: step = 0.1).
func Oracle(step float64) Strategy {
	if step <= 0 || step > 0.5 {
		step = 0.1
	}
	return oracle{step: step}
}

func (o oracle) Name() string { return "Oracle" }

func (o oracle) Run(ctx context.Context, w workloads.Workload, spec platform.Spec, _ *powerchar.Model, metric metrics.Metric, seed int64) (Result, error) {
	// Every fixed-ratio run boots its own platform, so the exhaustive
	// sweep fans out across the worker pool; candidates land in
	// per-index slots and the winner is picked by the same low-to-high
	// scan as the serial search (ties break toward smaller α).
	var alphas []float64
	for alpha := 0.0; alpha <= 1+1e-9; alpha += o.step {
		a := alpha
		if a > 1 {
			a = 1
		}
		alphas = append(alphas, a)
	}
	cands := make([]Result, len(alphas))
	err := par.ForEach(ctx, len(alphas), 0, func(_ context.Context, i int) error {
		a := alphas[i]
		dur, energy, share, n, err := runFixed(w, spec, a, seed)
		if err != nil {
			return err
		}
		cands[i] = Result{
			Strategy: "Oracle", Workload: w.Abbrev, Platform: spec.Name,
			Duration: dur, EnergyJ: energy,
			Value:    metric.EvalEnergy(energy, dur.Seconds()),
			GPUShare: share, OracleAlpha: a, Invocations: n,
		}
		return nil
	})
	if err != nil {
		return Result{}, err
	}
	best := Result{}
	found := false
	for _, c := range cands {
		if !found || c.Value < best.Value {
			found = true
			best = c
		}
	}
	if !found {
		return Result{}, fmt.Errorf("sched: oracle found no feasible ratio for %s", w.Abbrev)
	}
	return best, nil
}

// adaptive wraps the EAS runtime; with the time metric it degenerates
// to the paper's PERF strategy.
type adaptive struct {
	name string
	// objective is what the runtime optimizes; the evaluation metric
	// may differ (PERF optimizes time but is judged on energy metrics).
	objective func(metric metrics.Metric) metrics.Metric
	opts      core.Options
}

// EAS returns the paper's energy-aware scheduler optimizing the
// evaluation metric itself.
func EAS(opts core.Options) Strategy {
	return adaptive{
		name:      "EAS",
		objective: func(m metrics.Metric) metrics.Metric { return m },
		opts:      opts,
	}
}

// Perf returns the best-performance strategy of [12]: the same
// profiling machinery, but partitioning purely to minimize execution
// time.
func Perf(opts core.Options) Strategy {
	timeMetric := metrics.New("time", func(_, t float64) float64 { return t })
	return adaptive{
		name:      "PERF",
		objective: func(metrics.Metric) metrics.Metric { return timeMetric },
		opts:      opts,
	}
}

func (a adaptive) Name() string { return a.name }

func (a adaptive) Run(ctx context.Context, w workloads.Workload, spec platform.Spec, model *powerchar.Model, metric metrics.Metric, seed int64) (Result, error) {
	if model == nil {
		return Result{}, fmt.Errorf("sched: %s needs a power characterization model", a.name)
	}
	invs, err := w.Schedule(spec.Name, seed)
	if err != nil {
		return Result{}, err
	}
	p, err := platform.New(spec)
	if err != nil {
		return Result{}, err
	}
	eng := engine.New(p)
	s, err := core.New(eng, model, a.objective(metric), a.opts)
	if err != nil {
		return Result{}, err
	}
	// Flush durable state (Options.StatePath) at the end of the run so
	// a later process warm-starts from this run's learned α table; a
	// no-op without a configured state store.
	defer s.Close()
	var total time.Duration
	var energy, gpuItems, allItems float64
	for _, inv := range invs {
		rep, err := s.ParallelForCtx(ctx, inv.Kernel, inv.N)
		if err != nil {
			return Result{}, fmt.Errorf("sched: %s on %s: %w", a.name, w.Abbrev, err)
		}
		total += rep.Duration
		energy += rep.EnergyJ
		gpuItems += rep.GPUItems
		allItems += float64(inv.N)
		eng.RunIdle(InterInvocationGap, nil)
	}
	share := 0.0
	if allItems > 0 {
		share = gpuItems / allItems
	}
	return Result{
		Strategy: a.name, Workload: w.Abbrev, Platform: spec.Name,
		Duration: total, EnergyJ: energy,
		Value:       metric.EvalEnergy(energy, total.Seconds()),
		GPUShare:    share,
		Invocations: len(invs),
	}, nil
}
