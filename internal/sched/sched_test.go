package sched

import (
	"context"
	"sync"
	"testing"

	"github.com/hetsched/eas/internal/core"
	"github.com/hetsched/eas/internal/metrics"
	"github.com/hetsched/eas/internal/platform"
	"github.com/hetsched/eas/internal/powerchar"
	"github.com/hetsched/eas/internal/workloads"
)

var (
	modelOnce sync.Once
	deskModel *powerchar.Model
	modelErr  error
)

func desktopModel(t *testing.T) *powerchar.Model {
	t.Helper()
	modelOnce.Do(func() {
		deskModel, modelErr = powerchar.Characterize(platform.DesktopSpec(), powerchar.Options{})
	})
	if modelErr != nil {
		t.Fatal(modelErr)
	}
	return deskModel
}

func easOpts() core.Options {
	return core.Options{GrowProfileChunk: true, ConvergeTol: 0.08}
}

func TestStrategyNames(t *testing.T) {
	cases := map[string]Strategy{
		"CPU":    CPUOnly(),
		"GPU":    GPUOnly(),
		"Oracle": Oracle(0.1),
		"PERF":   Perf(easOpts()),
		"EAS":    EAS(easOpts()),
	}
	for want, s := range cases {
		if s.Name() != want {
			t.Errorf("Name = %q, want %q", s.Name(), want)
		}
	}
	if FixedAlpha(0.25).Name() != "alpha=0.25" {
		t.Errorf("FixedAlpha name = %q", FixedAlpha(0.25).Name())
	}
}

func TestFixedEndpointsMatchDedicatedStrategies(t *testing.T) {
	w, _ := workloads.ByAbbrev("SM")
	spec := platform.DesktopSpec()
	cpu1, err := CPUOnly().Run(context.Background(), w, spec, nil, metrics.EDP, 1)
	if err != nil {
		t.Fatal(err)
	}
	cpu2, err := FixedAlpha(0).Run(context.Background(), w, spec, nil, metrics.EDP, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cpu1.Value != cpu2.Value || cpu1.Duration != cpu2.Duration {
		t.Errorf("CPUOnly != FixedAlpha(0): %+v vs %+v", cpu1, cpu2)
	}
	if cpu1.GPUShare != 0 {
		t.Errorf("CPU-only GPU share = %v", cpu1.GPUShare)
	}
	gpu, err := GPUOnly().Run(context.Background(), w, spec, nil, metrics.EDP, 1)
	if err != nil {
		t.Fatal(err)
	}
	if gpu.GPUShare != 1 {
		t.Errorf("GPU-only GPU share = %v", gpu.GPUShare)
	}
}

func TestOracleIsLowerBoundOnGrid(t *testing.T) {
	// The Oracle must never be worse than CPU-alone or GPU-alone
	// (both are on its search grid).
	w, _ := workloads.ByAbbrev("SM")
	spec := platform.DesktopSpec()
	oracle, err := Oracle(0.1).Run(context.Background(), w, spec, nil, metrics.EDP, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []Strategy{CPUOnly(), GPUOnly()} {
		res, err := s.Run(context.Background(), w, spec, nil, metrics.EDP, 1)
		if err != nil {
			t.Fatal(err)
		}
		if oracle.Value > res.Value*1.0001 {
			t.Errorf("oracle %v worse than %s %v", oracle.Value, s.Name(), res.Value)
		}
	}
	if oracle.OracleAlpha < 0 || oracle.OracleAlpha > 1 {
		t.Errorf("oracle alpha %v outside [0,1]", oracle.OracleAlpha)
	}
}

func TestAdaptiveNeedsModel(t *testing.T) {
	w, _ := workloads.ByAbbrev("SM")
	if _, err := EAS(easOpts()).Run(context.Background(), w, platform.DesktopSpec(), nil, metrics.EDP, 1); err == nil {
		t.Error("EAS without a model should error")
	}
}

func TestUnsupportedWorkloadPropagates(t *testing.T) {
	w, _ := workloads.ByAbbrev("BFS") // not on tablet
	if _, err := CPUOnly().Run(context.Background(), w, platform.TabletSpec(), nil, metrics.EDP, 1); err == nil {
		t.Error("tablet BFS should error")
	}
}

func TestDeterministicRuns(t *testing.T) {
	w, _ := workloads.ByAbbrev("NB")
	spec := platform.DesktopSpec()
	model := desktopModel(t)
	a, err := EAS(easOpts()).Run(context.Background(), w, spec, model, metrics.EDP, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EAS(easOpts()).Run(context.Background(), w, spec, model, metrics.EDP, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("EAS runs diverged:\n%+v\n%+v", a, b)
	}
}

func TestEASBeatsPerfOnEnergyForComputeWorkload(t *testing.T) {
	// The paper's central claim in miniature: on the desktop, for a
	// compute-bound regular workload under the energy metric, PERF
	// splits work (burning CPU power) while EAS recognizes the GPU's
	// power efficiency.
	w, _ := workloads.ByAbbrev("RT")
	spec := platform.DesktopSpec()
	model := desktopModel(t)
	perf, err := Perf(easOpts()).Run(context.Background(), w, spec, model, metrics.Energy, 1)
	if err != nil {
		t.Fatal(err)
	}
	eas, err := EAS(easOpts()).Run(context.Background(), w, spec, model, metrics.Energy, 1)
	if err != nil {
		t.Fatal(err)
	}
	if eas.Value >= perf.Value {
		t.Errorf("EAS energy %v should beat PERF %v on RT", eas.Value, perf.Value)
	}
	if eas.GPUShare <= perf.GPUShare {
		t.Errorf("EAS should offload more than PERF for energy: %v vs %v", eas.GPUShare, perf.GPUShare)
	}
}

func TestPerfOptimizesTime(t *testing.T) {
	// PERF should achieve (near-)best execution time among strategies.
	w, _ := workloads.ByAbbrev("MB")
	spec := platform.DesktopSpec()
	model := desktopModel(t)
	perf, err := Perf(easOpts()).Run(context.Background(), w, spec, model, metrics.EDP, 1)
	if err != nil {
		t.Fatal(err)
	}
	gpu, err := GPUOnly().Run(context.Background(), w, spec, nil, metrics.EDP, 1)
	if err != nil {
		t.Fatal(err)
	}
	cpu, err := CPUOnly().Run(context.Background(), w, spec, nil, metrics.EDP, 1)
	if err != nil {
		t.Fatal(err)
	}
	if perf.Duration > gpu.Duration || perf.Duration > cpu.Duration {
		t.Errorf("PERF %v should be faster than single devices (gpu %v, cpu %v)",
			perf.Duration, gpu.Duration, cpu.Duration)
	}
}
