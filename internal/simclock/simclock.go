// Package simclock provides the deterministic virtual clock that the
// platform simulation runs on. All timing and energy accounting in the
// repository happens in simulated time: the scheduler under test never
// reads the host wall clock, which makes every experiment reproducible
// bit-for-bit.
//
// The clock advances in fixed ticks (the simulation quantum). A quantum
// of 1 ms is fine-grained enough to resolve the paper's 100 ms
// short/long threshold and its PCU reaction transients, while keeping
// paper-scale runs (minutes of simulated time) cheap to simulate.
package simclock

import (
	"fmt"
	"time"
)

// DefaultTick is the default simulation quantum.
const DefaultTick = time.Millisecond

// Clock is a virtual clock. The zero value is not usable; construct
// with New.
type Clock struct {
	now  time.Duration
	tick time.Duration
}

// New returns a clock at t=0 advancing by the given tick. A non-positive
// tick panics: it is a programming error, not an environmental failure.
func New(tick time.Duration) *Clock {
	if tick <= 0 {
		panic(fmt.Sprintf("simclock: non-positive tick %v", tick))
	}
	return &Clock{tick: tick}
}

// Now returns the current virtual time since the clock was created.
func (c *Clock) Now() time.Duration { return c.now }

// Tick returns the simulation quantum.
func (c *Clock) Tick() time.Duration { return c.tick }

// Step advances the clock by one quantum and returns the new time.
func (c *Clock) Step() time.Duration {
	c.now += c.tick
	return c.now
}

// Advance moves the clock forward by d (rounded up to a whole number of
// ticks) and returns the number of ticks stepped. Negative d panics.
func (c *Clock) Advance(d time.Duration) int {
	if d < 0 {
		panic(fmt.Sprintf("simclock: negative advance %v", d))
	}
	n := int((d + c.tick - 1) / c.tick)
	c.now += time.Duration(n) * c.tick
	return n
}

// AdvanceExact moves the clock forward by exactly d with no rounding.
// The simulation engine uses this for event-aligned sub-tick steps
// (a device finishing mid-tick, a kernel launch completing). Negative d
// panics.
func (c *Clock) AdvanceExact(d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("simclock: negative advance %v", d))
	}
	c.now += d
}

// Reset returns the clock to t=0, keeping its tick.
func (c *Clock) Reset() { c.now = 0 }

// Restore rewinds (or advances) the clock to an instant previously
// obtained from Now — the rollback half of the platform's
// snapshot/restore used by what-if analyses. Negative instants panic.
func (c *Clock) Restore(t time.Duration) {
	if t < 0 {
		panic(fmt.Sprintf("simclock: negative restore instant %v", t))
	}
	c.now = t
}

// Seconds returns the current virtual time in seconds.
func (c *Clock) Seconds() float64 { return c.now.Seconds() }

// TickSeconds returns the quantum length in seconds. Handy for the
// per-tick power integration loops.
func (c *Clock) TickSeconds() float64 { return c.tick.Seconds() }
