package simclock

import (
	"testing"
	"time"
)

func TestStepAdvancesByTick(t *testing.T) {
	c := New(time.Millisecond)
	if c.Now() != 0 {
		t.Fatalf("fresh clock Now = %v, want 0", c.Now())
	}
	for i := 1; i <= 5; i++ {
		got := c.Step()
		want := time.Duration(i) * time.Millisecond
		if got != want {
			t.Fatalf("step %d: Now = %v, want %v", i, got, want)
		}
	}
}

func TestAdvanceRoundsUp(t *testing.T) {
	c := New(time.Millisecond)
	n := c.Advance(2500 * time.Microsecond)
	if n != 3 {
		t.Errorf("Advance ticks = %d, want 3", n)
	}
	if c.Now() != 3*time.Millisecond {
		t.Errorf("Now = %v, want 3ms", c.Now())
	}
	if n := c.Advance(0); n != 0 || c.Now() != 3*time.Millisecond {
		t.Errorf("Advance(0) moved the clock: n=%d now=%v", n, c.Now())
	}
}

func TestReset(t *testing.T) {
	c := New(10 * time.Millisecond)
	c.Step()
	c.Reset()
	if c.Now() != 0 {
		t.Errorf("after Reset Now = %v, want 0", c.Now())
	}
	if c.Tick() != 10*time.Millisecond {
		t.Errorf("Reset changed tick: %v", c.Tick())
	}
}

func TestSecondsHelpers(t *testing.T) {
	c := New(250 * time.Millisecond)
	c.Step()
	c.Step()
	if c.Seconds() != 0.5 {
		t.Errorf("Seconds = %v, want 0.5", c.Seconds())
	}
	if c.TickSeconds() != 0.25 {
		t.Errorf("TickSeconds = %v, want 0.25", c.TickSeconds())
	}
}

func TestInvalidUsePanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("zero tick", func() { New(0) })
	mustPanic("negative tick", func() { New(-time.Second) })
	mustPanic("negative advance", func() { New(time.Millisecond).Advance(-1) })
}
