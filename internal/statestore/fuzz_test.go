package statestore

import (
	"bytes"
	"testing"
	"time"
)

// FuzzLoadState throws arbitrary bytes at the recovery parser — the
// code every restart trusts with whatever a crash left on disk. The
// contract under fuzzing: never panic, never read out of bounds, keep
// lastGood (the truncation offset) inside the file, and never return a
// record that violates the wire format's own caps. Semantic garbage
// that survives the CRC is fine here — evidence sanitization above the
// store (internal/core) handles meaning; this layer only owes memory
// safety and bounded damage.
func FuzzLoadState(f *testing.F) {
	// Seed corpus: valid images of both kinds, their corrupted and
	// truncated variants, and adversarial frames.
	recs := []Record{
		{Op: OpFull, Kernel: "matmul", Alpha: 0.7, Items: 4e6, Invocations: 12, Category: 3, At: time.Unix(1700000000, 0)},
		{Op: OpAccum, Kernel: "bfs", Alpha: 0.25, Items: 1e5, Category: 6, At: time.Unix(1700000001, 0)},
		{Op: OpReprofile, Kernel: "matmul"},
	}
	wal := encodeHeader(kindWAL, 3)
	for _, r := range recs {
		wal = encodeRecord(wal, r)
	}
	snap := encodeHeader(kindSnapshot, 1)
	snap = encodeRecord(snap, recs[0])
	f.Add(wal)
	f.Add(snap)
	f.Add(wal[:len(wal)-5])     // torn tail
	f.Add(wal[:headerLen])      // header only
	f.Add([]byte{})             // empty file
	f.Add([]byte("EASSTAT1"))   // magic, nothing else
	f.Add(bytes.Repeat(wal, 3)) // repeated headers mid-stream
	flipped := bytes.Clone(wal)
	flipped[headerLen+6] ^= 0xFF // corrupt first record's CRC field
	f.Add(flipped)
	// A frame that declares far more payload than follows.
	lie := encodeHeader(kindWAL, 1)
	lie = append(lie, 0xE5, 0x0D, 0x5C, 0xEA, 0xFF, 0xFF, 0x00, 0x00, 0, 0, 0, 0, 1, 2, 3)
	f.Add(lie)

	f.Fuzz(func(t *testing.T, data []byte) {
		hdr, got, lastGood, stats, headerOK := decodeFile(data)
		if lastGood < 0 || lastGood > int64(len(data)) {
			t.Fatalf("lastGood=%d outside [0,%d]", lastGood, len(data))
		}
		if !headerOK {
			if len(got) != 0 {
				t.Fatalf("records decoded despite bad header")
			}
			return
		}
		if hdr.kind != kindSnapshot && hdr.kind != kindWAL {
			t.Fatalf("headerOK with kind=%d", hdr.kind)
		}
		if lastGood < int64(headerLen) {
			t.Fatalf("lastGood=%d before header end", lastGood)
		}
		for _, r := range got {
			if r.Kernel == "" || len(r.Kernel) > maxNameLen {
				t.Fatalf("record with out-of-cap name length %d", len(r.Kernel))
			}
			if r.Op != OpFull && r.Op != OpAccum && r.Op != OpReprofile {
				t.Fatalf("record with unknown op %d", r.Op)
			}
		}
		if stats.TornTail && stats.TornTailBytes <= 0 {
			t.Fatalf("torn tail with %d bytes", stats.TornTailBytes)
		}
		// Re-encoding what was recovered must itself recover cleanly —
		// the parser and encoder agree on the format.
		out := encodeHeader(kindWAL, 1)
		for _, r := range got {
			out = encodeRecord(out, r)
		}
		_, got2, _, st2, ok2 := decodeFile(out)
		if !ok2 || len(got2) != len(got) || st2.CorruptRecords != 0 || st2.TornTail {
			t.Fatalf("re-encode of recovered records does not round-trip: %d -> %d (%+v)", len(got), len(got2), st2)
		}
	})
}
