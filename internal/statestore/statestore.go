// Package statestore persists the scheduler's learned state — the
// per-kernel α-table records the paper's global table G accumulates
// online — across process restarts, so a crash or redeploy does not
// force every tenant's workload through full re-profiling again.
//
// The design is a classic two-file log-structured store:
//
//   - an append-only WAL of table mutations (one framed record per
//     accumulate / replace / re-profile event), fsynced per-append or
//     per-compaction depending on the sync mode; and
//   - a snapshot holding one full record per kernel, rewritten by
//     Compact via the temp-file → fsync → rename → fsync-parent-dir
//     dance so a reader (or a crash) never observes a half-written
//     snapshot.
//
// Every record is individually framed — marker, length, CRC-32,
// payload — so recovery is corruption-tolerant rather than
// all-or-nothing: a torn tail (crash mid-append) is truncated, a
// bit-flipped record fails its checksum and is skipped by scanning
// forward to the next frame marker, and both outcomes are counted in
// RecoveryStats instead of failing the open. Snapshot and WAL carry a
// generation number; a WAL older than the snapshot (a crash between
// snapshot rename and WAL truncation) is discarded rather than
// double-replayed.
//
// The store is deliberately ignorant of scheduling semantics: it
// frames, checksums, and orders records. Evidence sanitization —
// items > 0, finite α, category validity, TTL/staleness — belongs to
// the consumer (internal/core), which routes every recovered record
// through the same checks live accumulation uses.
//
// Persistence failures degrade, never escalate: the first write error
// (including injected short-write / ENOSPC faults from a
// faultinject.Plan) permanently disables the store, and every later
// Append returns ErrDisabled immediately. The scheduler counts and
// logs the failure and keeps making decisions from memory.
package statestore

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sync"
	"time"

	"github.com/hetsched/eas/internal/faultinject"
)

// SyncMode selects when the WAL reaches stable storage.
type SyncMode int

const (
	// SyncOnCompact (the default) buffers appends and fsyncs only at
	// compaction and Close. A hard kill loses the records appended
	// since the last sync, never the file's integrity.
	SyncOnCompact SyncMode = iota
	// SyncAlways flushes and fsyncs the WAL after every append: a hard
	// kill loses at most the record being written (recovered as a torn
	// tail). This is the mode kill-restart warm starts rely on.
	SyncAlways
)

// Op distinguishes the mutation kinds the WAL records.
type Op byte

const (
	// OpFull carries a kernel's complete record state — snapshot rows
	// and explicit replaces.
	OpFull Op = 1
	// OpAccum carries one accumulate delta: the evidence (α, items,
	// category) of a single recorded invocation.
	OpAccum Op = 2
	// OpReprofile marks a kernel whose next invocation must profile
	// again (a quarantined profile).
	OpReprofile Op = 3
)

// Record is one persisted table mutation. Fields beyond Op and Kernel
// are op-specific; see the Op constants.
type Record struct {
	Op     Op
	Kernel string
	// Alpha is the offload ratio (OpFull: accumulated; OpAccum: this
	// invocation's).
	Alpha float64
	// Items is the evidence weight: the invocation's item count for
	// OpAccum, the record's total accumulated weight for OpFull.
	Items float64
	// Invocations is the record's recorded-invocation count (OpFull).
	Invocations uint32
	// Category is the dense workload-class index (wclass.Index()).
	Category byte
	// Reprofile carries the record's forced-re-profile flag (OpFull).
	Reprofile bool
	// At is the mutation's wall-clock time — the age the TTL/staleness
	// checks honor across restarts.
	At time.Time
}

// RecoveryStats reports what recovery found. Corrupt and torn records
// are expected outcomes of crashes, not errors: they are counted and
// skipped so one bad frame never poisons the rest of the state.
type RecoveryStats struct {
	// SnapshotRecords and WALRecords count frames decoded cleanly.
	SnapshotRecords int
	WALRecords      int
	// CorruptRecords counts frames skipped for a checksum mismatch,
	// an implausible length, or an undecodable payload (snapshot and
	// WAL combined). A file whose header is unreadable counts once.
	CorruptRecords int
	// TornTail is true when the WAL ended mid-record — the signature
	// of a crash during an append; TornTailBytes is how many trailing
	// bytes were discarded (and physically truncated on open).
	TornTail      bool
	TornTailBytes int
	// StaleWALDiscarded is true when the WAL's generation predated the
	// snapshot's (a crash between snapshot rename and WAL truncation)
	// and its records — already folded into the snapshot — were
	// dropped instead of double-replayed.
	StaleWALDiscarded bool
}

// Options tune a Store.
type Options struct {
	// Sync selects the WAL durability mode.
	Sync SyncMode
	// CompactEvery is how many appended records arm NeedsCompaction
	// (default 1024; the store never compacts on its own — the owner
	// calls Compact with a full table export).
	CompactEvery int
	// Faults, when non-nil, injects write failures (error / short
	// write / ENOSPC) into Append so degradation is testable.
	Faults *faultinject.Plan
}

// ErrDisabled is returned by Append and Compact after a write failure
// has permanently disabled persistence for this store.
var ErrDisabled = errors.New("statestore: persistence disabled after write failure")

const (
	fileMagic    = "EASSTAT1"
	kindSnapshot = byte(1)
	kindWAL      = byte(2)
	headerLen    = len(fileMagic) + 1 + 8 // magic | kind | generation

	recMarker   = uint32(0xEA5C0DE5)
	frameLen    = 12 // marker | payloadLen | crc32
	maxPayload  = 1 << 16
	maxNameLen  = 1 << 12
	defCompact  = 1024
	tmpBaseSnap = ".eas-state-*"
)

// Store is an open durable-state handle: the WAL file plus the path
// its snapshots compact into. All methods are safe for concurrent use.
type Store struct {
	mu       sync.Mutex
	path     string // snapshot path; the WAL lives at path+".wal"
	opts     Options
	gen      uint64
	wal      *os.File
	buf      *bufio.Writer
	scratch  []byte
	appended int // records in the current WAL generation
	bytes    int64
	disabled bool
	err      error // first write failure
}

// WALPath returns the WAL path for a snapshot path.
func WALPath(path string) string { return path + ".wal" }

// Open recovers the state persisted at path (snapshot plus WAL) and
// returns the store ready for appends, the recovered records in replay
// order (snapshot rows first, then WAL mutations), and what recovery
// observed. Missing files are a cold start, not an error; corrupt or
// torn content is skipped and counted. The error is non-nil only for
// environmental failures (unwritable directory, undeletable tail).
func Open(path string, opts Options) (*Store, []Record, RecoveryStats, error) {
	if opts.CompactEvery <= 0 {
		opts.CompactEvery = defCompact
	}
	var stats RecoveryStats
	var recs []Record

	snapGen, snapOK := uint64(0), false
	if data, err := os.ReadFile(path); err == nil {
		hdr, srecs, _, st, headerOK := decodeFile(data)
		stats.SnapshotRecords = len(srecs)
		stats.CorruptRecords += st.CorruptRecords
		if headerOK && hdr.kind == kindSnapshot {
			snapGen, snapOK = hdr.gen, true
			recs = append(recs, srecs...)
		} else if len(data) > 0 {
			// Unreadable header or wrong kind: the snapshot as a whole
			// is corrupt. Count it once and start cold.
			stats.CorruptRecords++
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, nil, stats, fmt.Errorf("statestore: reading snapshot: %w", err)
	}

	walPath := WALPath(path)
	gen := snapGen
	if !snapOK {
		gen = 1
	}
	walValid := false
	if data, err := os.ReadFile(walPath); err == nil {
		hdr, wrecs, lastGood, st, headerOK := decodeFile(data)
		switch {
		case !headerOK && len(data) > 0:
			stats.CorruptRecords++
		case headerOK && hdr.kind != kindWAL:
			stats.CorruptRecords++
		case headerOK && snapOK && hdr.gen != snapGen:
			// Crash between snapshot rename and WAL truncation: these
			// mutations are already inside the snapshot.
			stats.StaleWALDiscarded = true
		case headerOK:
			if !snapOK {
				gen = hdr.gen
			}
			walValid = true
			stats.WALRecords = len(wrecs)
			stats.CorruptRecords += st.CorruptRecords
			stats.TornTail = st.TornTail
			stats.TornTailBytes = st.TornTailBytes
			recs = append(recs, wrecs...)
			if st.TornTail {
				// Physically drop the torn tail so the next append
				// starts on a clean record boundary.
				if err := os.Truncate(walPath, lastGood); err != nil {
					return nil, nil, stats, fmt.Errorf("statestore: truncating torn WAL tail: %w", err)
				}
			}
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, nil, stats, fmt.Errorf("statestore: reading WAL: %w", err)
	}

	s := &Store{path: path, opts: opts, gen: gen}
	if walValid {
		f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, nil, stats, fmt.Errorf("statestore: opening WAL for append: %w", err)
		}
		s.wal = f
		s.appended = stats.WALRecords
	} else {
		if err := s.createWAL(); err != nil {
			return nil, nil, stats, err
		}
	}
	s.buf = bufio.NewWriter(s.wal)
	return s, recs, stats, nil
}

// createWAL (re)creates the WAL with a fresh header at the store's
// current generation. Caller holds the lock (or is Open).
func (s *Store) createWAL() error {
	f, err := os.OpenFile(WALPath(s.path), os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("statestore: creating WAL: %w", err)
	}
	if _, err := f.Write(encodeHeader(kindWAL, s.gen)); err != nil {
		f.Close()
		return fmt.Errorf("statestore: writing WAL header: %w", err)
	}
	s.wal = f
	s.appended = 0
	return nil
}

// Append frames one mutation record onto the WAL. After the first
// write failure the store disables itself and every later Append
// returns ErrDisabled without touching the file — persistence
// degrades; it never makes the caller's scheduling decision fail.
// It returns the framed size in bytes for accounting.
func (s *Store) Append(rec Record) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.disabled {
		return 0, ErrDisabled
	}
	s.scratch = encodeRecord(s.scratch[:0], rec)
	n := len(s.scratch)

	switch s.opts.Faults.TakeWALFault() {
	case faultinject.WALWriteError:
		return 0, s.disable(errors.New("statestore: injected write error"))
	case faultinject.WALNoSpace:
		return 0, s.disable(errors.New("statestore: injected write failure: no space left on device"))
	case faultinject.WALShortWrite:
		// Write a prefix of the frame, then fail — the torn-record
		// shape recovery must truncate.
		s.buf.Write(s.scratch[:n/2])
		s.buf.Flush()
		return 0, s.disable(errors.New("statestore: injected short write"))
	}

	if _, err := s.buf.Write(s.scratch); err != nil {
		return 0, s.disable(err)
	}
	if s.opts.Sync == SyncAlways {
		if err := s.flushLocked(); err != nil {
			return 0, s.disable(err)
		}
	}
	s.appended++
	s.bytes += int64(n)
	return n, nil
}

// disable permanently turns persistence off, remembering the first
// cause. Caller holds the lock.
func (s *Store) disable(err error) error {
	s.disabled = true
	if s.err == nil {
		s.err = err
	}
	return err
}

// flushLocked drains the buffer and fsyncs the WAL. Caller holds the
// lock.
func (s *Store) flushLocked() error {
	if err := s.buf.Flush(); err != nil {
		return err
	}
	return s.wal.Sync()
}

// NeedsCompaction reports whether the WAL has accumulated enough
// records that the owner should fold them into a snapshot.
func (s *Store) NeedsCompaction() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return !s.disabled && s.appended >= s.opts.CompactEvery
}

// Compact atomically replaces the snapshot with the given full table
// export and starts a fresh WAL generation. The snapshot write is
// crash-safe (temp + fsync + rename + fsync parent dir); the ordering
// — snapshot first, WAL truncation second — plus the generation check
// at Open make a crash at any point recoverable without replaying a
// mutation twice.
func (s *Store) Compact(full []Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.disabled {
		return ErrDisabled
	}
	// The old WAL's buffered tail is irrelevant once the snapshot
	// lands, but flush errors signal a sick disk — stop early.
	if err := s.buf.Flush(); err != nil {
		return s.disable(err)
	}
	if err := writeSnapshotFile(s.path, s.gen+1, full); err != nil {
		return s.disable(err)
	}
	s.gen++
	if err := s.wal.Close(); err != nil {
		return s.disable(err)
	}
	if err := s.createWAL(); err != nil {
		return s.disable(err)
	}
	s.buf.Reset(s.wal)
	return nil
}

// Sync flushes buffered appends to stable storage (a no-op under
// SyncAlways, where every append already did).
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.disabled {
		return ErrDisabled
	}
	if err := s.flushLocked(); err != nil {
		return s.disable(err)
	}
	return nil
}

// Close flushes, fsyncs, and closes the WAL. The store must not be
// used afterwards. A disabled store closes the file handle without
// attempting further writes.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return nil
	}
	var err error
	if !s.disabled {
		err = s.flushLocked()
	}
	if cerr := s.wal.Close(); err == nil {
		err = cerr
	}
	s.wal = nil
	return err
}

// Err returns the first write failure that disabled the store (nil
// while healthy).
func (s *Store) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Appended reports records and bytes appended to the current store
// since Open (across generations).
func (s *Store) Appended() (records int, bytes int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.appended, s.bytes
}

// WriteSnapshotFile writes a standalone snapshot of full records to
// path with the same crash-safe discipline Compact uses — the
// SaveState escape hatch.
func WriteSnapshotFile(path string, recs []Record) error {
	return writeSnapshotFile(path, 1, recs)
}

// ReadFile decodes any statestore file (snapshot or WAL) with the
// recovery parser: corrupt frames are skipped and counted, a torn
// tail truncates the decode (the file itself is left untouched).
func ReadFile(path string) ([]Record, RecoveryStats, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, RecoveryStats{}, err
	}
	hdr, recs, _, st, headerOK := decodeFile(data)
	var stats RecoveryStats
	stats.CorruptRecords = st.CorruptRecords
	stats.TornTail = st.TornTail
	stats.TornTailBytes = st.TornTailBytes
	if !headerOK {
		stats.CorruptRecords++
		return nil, stats, nil
	}
	if hdr.kind == kindSnapshot {
		stats.SnapshotRecords = len(recs)
	} else {
		stats.WALRecords = len(recs)
	}
	return recs, stats, nil
}

func writeSnapshotFile(path string, gen uint64, recs []Record) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, tmpBaseSnap)
	if err != nil {
		return fmt.Errorf("statestore: creating temp snapshot: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	w := bufio.NewWriter(tmp)
	w.Write(encodeHeader(kindSnapshot, gen))
	var scratch []byte
	for _, r := range recs {
		scratch = encodeRecord(scratch[:0], r)
		if _, err := w.Write(scratch); err != nil {
			tmp.Close()
			return fmt.Errorf("statestore: writing snapshot: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		return fmt.Errorf("statestore: writing snapshot: %w", err)
	}
	if err := tmp.Chmod(0o644); err != nil {
		tmp.Close()
		return fmt.Errorf("statestore: snapshot permissions: %w", err)
	}
	// fsync before rename: the rename must never expose a file whose
	// bytes are still only in the page cache.
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("statestore: syncing snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("statestore: closing snapshot: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("statestore: committing snapshot: %w", err)
	}
	// fsync the parent directory so the rename itself is durable.
	return SyncDir(dir)
}

// SyncDir fsyncs a directory, making a just-completed rename durable.
// Filesystems that do not support directory fsync report it as a
// benign error, which is swallowed.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("statestore: opening dir for sync: %w", err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil && (errors.Is(err, os.ErrInvalid) || errors.Is(err, errors.ErrUnsupported)) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("statestore: syncing dir: %w", err)
	}
	return nil
}

// --- wire format ---

type fileHeader struct {
	kind byte
	gen  uint64
}

func encodeHeader(kind byte, gen uint64) []byte {
	b := make([]byte, 0, headerLen)
	b = append(b, fileMagic...)
	b = append(b, kind)
	b = binary.LittleEndian.AppendUint64(b, gen)
	return b
}

// encodeRecord frames one record: marker | payloadLen | crc32(payload)
// | payload. The payload starts with the op byte and the
// length-prefixed kernel name, then op-specific fields.
func encodeRecord(dst []byte, r Record) []byte {
	start := len(dst)
	dst = binary.LittleEndian.AppendUint32(dst, recMarker)
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0) // len + crc placeholders
	p := len(dst)
	dst = append(dst, byte(r.Op))
	name := r.Kernel
	if len(name) > maxNameLen {
		name = name[:maxNameLen]
	}
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(name)))
	dst = append(dst, name...)
	switch r.Op {
	case OpFull:
		dst = binary.LittleEndian.AppendUint64(dst, floatBits(r.Alpha))
		dst = binary.LittleEndian.AppendUint64(dst, floatBits(r.Items))
		dst = binary.LittleEndian.AppendUint32(dst, r.Invocations)
		dst = append(dst, r.Category, boolByte(r.Reprofile))
		dst = binary.LittleEndian.AppendUint64(dst, uint64(r.At.UnixNano()))
	case OpAccum:
		dst = binary.LittleEndian.AppendUint64(dst, floatBits(r.Alpha))
		dst = binary.LittleEndian.AppendUint64(dst, floatBits(r.Items))
		dst = append(dst, r.Category)
		dst = binary.LittleEndian.AppendUint64(dst, uint64(r.At.UnixNano()))
	case OpReprofile:
		// name only
	}
	payload := dst[p:]
	binary.LittleEndian.PutUint32(dst[start+4:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(dst[start+8:], crc32.ChecksumIEEE(payload))
	return dst
}

// decodeFile parses a whole snapshot or WAL image. It never panics on
// arbitrary input (FuzzLoadState's contract): corrupt frames are
// counted and skipped by scanning forward to the next marker, an
// incomplete final frame is reported as a torn tail, and lastGood is
// the offset a physical truncation should cut at.
func decodeFile(data []byte) (hdr fileHeader, recs []Record, lastGood int64, stats RecoveryStats, headerOK bool) {
	if len(data) < headerLen || string(data[:len(fileMagic)]) != fileMagic {
		return hdr, nil, 0, stats, false
	}
	hdr.kind = data[len(fileMagic)]
	hdr.gen = binary.LittleEndian.Uint64(data[len(fileMagic)+1:])
	if hdr.kind != kindSnapshot && hdr.kind != kindWAL {
		return hdr, nil, 0, stats, false
	}
	headerOK = true
	lastGood = int64(headerLen)

	off := headerLen
	for off < len(data) {
		rec, next, status := decodeFrame(data, off)
		switch status {
		case frameOK:
			recs = append(recs, rec)
			off = next
			lastGood = int64(off)
		case frameCorrupt:
			stats.CorruptRecords++
			off = next
		case frameTorn:
			stats.TornTail = true
			stats.TornTailBytes = len(data) - int(lastGood)
			return hdr, recs, lastGood, stats, true
		}
	}
	return hdr, recs, lastGood, stats, true
}

type frameStatus int

const (
	frameOK frameStatus = iota
	frameCorrupt
	frameTorn
)

// decodeFrame tries to read one frame at off. On corruption it
// returns the offset of the next candidate marker (resync), so one
// bad frame costs one record, not the rest of the file.
func decodeFrame(data []byte, off int) (Record, int, frameStatus) {
	if len(data)-off < frameLen {
		return Record{}, off, frameTorn
	}
	if binary.LittleEndian.Uint32(data[off:]) != recMarker {
		return Record{}, resync(data, off+1), frameCorrupt
	}
	plen := int(binary.LittleEndian.Uint32(data[off+4:]))
	crc := binary.LittleEndian.Uint32(data[off+8:])
	if plen <= 0 || plen > maxPayload {
		return Record{}, resync(data, off+1), frameCorrupt
	}
	if len(data)-off-frameLen < plen {
		// Shorter than the declared payload: a torn tail if nothing
		// follows, a corrupted length if another marker does.
		if next := resync(data, off+1); next < len(data) {
			return Record{}, next, frameCorrupt
		}
		return Record{}, off, frameTorn
	}
	payload := data[off+frameLen : off+frameLen+plen]
	if crc32.ChecksumIEEE(payload) != crc {
		return Record{}, resync(data, off+1), frameCorrupt
	}
	rec, ok := decodePayload(payload)
	if !ok {
		return Record{}, resync(data, off+1), frameCorrupt
	}
	return rec, off + frameLen + plen, frameOK
}

// resync scans forward from off for the next frame marker, returning
// len(data) when none remains.
func resync(data []byte, off int) int {
	for ; off+4 <= len(data); off++ {
		if binary.LittleEndian.Uint32(data[off:]) == recMarker {
			return off
		}
	}
	return len(data)
}

func decodePayload(p []byte) (Record, bool) {
	if len(p) < 3 {
		return Record{}, false
	}
	var r Record
	r.Op = Op(p[0])
	nameLen := int(binary.LittleEndian.Uint16(p[1:]))
	if nameLen == 0 || nameLen > maxNameLen || len(p) < 3+nameLen {
		return Record{}, false
	}
	r.Kernel = string(p[3 : 3+nameLen])
	rest := p[3+nameLen:]
	switch r.Op {
	case OpFull:
		if len(rest) != 8+8+4+1+1+8 {
			return Record{}, false
		}
		r.Alpha = bitsFloat(binary.LittleEndian.Uint64(rest))
		r.Items = bitsFloat(binary.LittleEndian.Uint64(rest[8:]))
		r.Invocations = binary.LittleEndian.Uint32(rest[16:])
		r.Category = rest[20]
		r.Reprofile = rest[21] != 0
		r.At = timeFromNanos(int64(binary.LittleEndian.Uint64(rest[22:])))
	case OpAccum:
		if len(rest) != 8+8+1+8 {
			return Record{}, false
		}
		r.Alpha = bitsFloat(binary.LittleEndian.Uint64(rest))
		r.Items = bitsFloat(binary.LittleEndian.Uint64(rest[8:]))
		r.Category = rest[16]
		r.At = timeFromNanos(int64(binary.LittleEndian.Uint64(rest[17:])))
	case OpReprofile:
		if len(rest) != 0 {
			return Record{}, false
		}
	default:
		return Record{}, false
	}
	return r, true
}

func timeFromNanos(ns int64) time.Time {
	if ns <= 0 {
		return time.Time{}
	}
	return time.Unix(0, ns)
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}

func floatBits(f float64) uint64 { return math.Float64bits(f) }

func bitsFloat(u uint64) float64 { return math.Float64frombits(u) }
