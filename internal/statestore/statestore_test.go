package statestore

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/hetsched/eas/internal/faultinject"
)

func tempStatePath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "alpha.state")
}

func sampleRecords() []Record {
	at := time.Unix(0, 1700000000000000000)
	return []Record{
		{Op: OpFull, Kernel: "matmul", Alpha: 0.7, Items: 4e6, Invocations: 12, Category: 3, Reprofile: false, At: at},
		{Op: OpAccum, Kernel: "bfs-frontier", Alpha: 0.25, Items: 100000, Category: 6, At: at.Add(time.Second)},
		{Op: OpReprofile, Kernel: "matmul"},
		{Op: OpAccum, Kernel: "nbody", Alpha: 1, Items: 1, Category: 0, At: at.Add(2 * time.Second)},
	}
}

func recordsEqual(a, b Record) bool {
	return a.Op == b.Op && a.Kernel == b.Kernel && a.Alpha == b.Alpha &&
		a.Items == b.Items && a.Invocations == b.Invocations &&
		a.Category == b.Category && a.Reprofile == b.Reprofile && a.At.Equal(b.At)
}

func TestOpenColdStart(t *testing.T) {
	path := tempStatePath(t)
	s, recs, stats, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if len(recs) != 0 {
		t.Errorf("cold start returned %d records", len(recs))
	}
	if stats != (RecoveryStats{}) {
		t.Errorf("cold start stats = %+v, want zero", stats)
	}
	if _, err := os.Stat(WALPath(path)); err != nil {
		t.Errorf("cold start should create the WAL: %v", err)
	}
}

func TestAppendRoundTrip(t *testing.T) {
	path := tempStatePath(t)
	s, _, _, err := Open(path, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	want := sampleRecords()
	for _, r := range want {
		if _, err := s.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if n, b := s.Appended(); n != len(want) || b <= 0 {
		t.Errorf("Appended() = %d records %d bytes", n, b)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, recs, stats, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if stats.WALRecords != len(want) || stats.CorruptRecords != 0 || stats.TornTail {
		t.Errorf("recovery stats = %+v", stats)
	}
	if len(recs) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(recs), len(want))
	}
	for i := range want {
		if !recordsEqual(recs[i], want[i]) {
			t.Errorf("record %d = %+v, want %+v", i, recs[i], want[i])
		}
	}
}

// TestSyncOnCompactSurvivesClose proves the buffered mode loses nothing
// across a clean shutdown: Close flushes and fsyncs.
func TestSyncOnCompactSurvivesClose(t *testing.T) {
	path := tempStatePath(t)
	s, _, _, err := Open(path, Options{Sync: SyncOnCompact})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range sampleRecords() {
		if _, err := s.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	_, recs, _, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(sampleRecords()) {
		t.Errorf("recovered %d records after buffered close, want %d", len(recs), len(sampleRecords()))
	}
}

func TestCompactionAndGenerations(t *testing.T) {
	path := tempStatePath(t)
	s, _, _, err := Open(path, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range sampleRecords() {
		if _, err := s.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	full := []Record{
		{Op: OpFull, Kernel: "matmul", Alpha: 0.7, Items: 4e6, Invocations: 13, Category: 3, At: time.Unix(1700000100, 0)},
		{Op: OpFull, Kernel: "bfs-frontier", Alpha: 0.25, Items: 100000, Invocations: 1, Category: 6, At: time.Unix(1700000101, 0)},
	}
	if err := s.Compact(full); err != nil {
		t.Fatal(err)
	}
	// Post-compaction mutations land in the fresh WAL generation.
	delta := Record{Op: OpAccum, Kernel: "matmul", Alpha: 0.6, Items: 5000, Category: 3, At: time.Unix(1700000102, 0)}
	if _, err := s.Append(delta); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, recs, stats, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if stats.SnapshotRecords != len(full) || stats.WALRecords != 1 {
		t.Errorf("stats = %+v, want %d snapshot + 1 WAL", stats, len(full))
	}
	if stats.StaleWALDiscarded {
		t.Error("fresh WAL flagged stale")
	}
	// Replay order: snapshot rows first, then WAL deltas.
	if len(recs) != len(full)+1 || !recordsEqual(recs[len(recs)-1], delta) {
		t.Fatalf("replay order wrong: %+v", recs)
	}
}

// TestStaleWALDiscarded reproduces a crash between compaction's
// snapshot rename and the WAL reset: the WAL's generation predates the
// snapshot's, so its records — already folded into the snapshot — must
// be dropped, not double-replayed.
func TestStaleWALDiscarded(t *testing.T) {
	path := tempStatePath(t)
	full := sampleRecords()[:1]
	if err := writeSnapshotFile(path, 7, full); err != nil {
		t.Fatal(err)
	}
	// A gen-3 WAL carrying a mutation the snapshot already holds.
	var wal []byte
	wal = append(wal, encodeHeader(kindWAL, 3)...)
	wal = encodeRecord(wal, Record{Op: OpAccum, Kernel: "matmul", Alpha: 0.5, Items: 10, Category: 3, At: time.Unix(1700000000, 0)})
	if err := os.WriteFile(WALPath(path), wal, 0o644); err != nil {
		t.Fatal(err)
	}

	s, recs, stats, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if !stats.StaleWALDiscarded {
		t.Error("stale WAL not flagged")
	}
	if stats.WALRecords != 0 || len(recs) != len(full) {
		t.Errorf("stale WAL replayed: stats=%+v recs=%d", stats, len(recs))
	}
	// The reopened store must have reset the WAL to the snapshot's
	// generation so the next open does not re-discard.
	rec2 := Record{Op: OpReprofile, Kernel: "matmul"}
	if _, err := s.Append(rec2); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	_, recs2, stats2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats2.StaleWALDiscarded || stats2.WALRecords != 1 || len(recs2) != len(full)+1 {
		t.Errorf("post-recovery generation broken: stats=%+v recs=%d", stats2, len(recs2))
	}
}

// buildWALImage returns a complete WAL image plus the offset of every
// record boundary (including the header end and the file end).
func buildWALImage(recs []Record) (data []byte, boundaries []int) {
	data = append(data, encodeHeader(kindWAL, 1)...)
	boundaries = append(boundaries, len(data))
	for _, r := range recs {
		data = encodeRecord(data, r)
		boundaries = append(boundaries, len(data))
	}
	return data, boundaries
}

// TestTornWriteMatrix truncates a valid WAL at every byte offset and
// asserts the crash-recovery contract at each: no panic, every record
// wholly before the cut is recovered, a mid-record cut is reported as a
// torn tail and physically truncated, and the store stays appendable.
func TestTornWriteMatrix(t *testing.T) {
	recs := sampleRecords()
	data, boundaries := buildWALImage(recs)
	onBoundary := make(map[int]int) // offset → records wholly before it
	for i, b := range boundaries {
		onBoundary[b] = i
	}
	dir := t.TempDir()
	for cut := 0; cut <= len(data); cut++ {
		path := filepath.Join(dir, "alpha.state")
		if err := os.WriteFile(WALPath(path), data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		s, got, stats, err := Open(path, Options{Sync: SyncAlways})
		if err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}

		headerOK := cut >= headerLen
		wantRecs := 0
		if headerOK {
			// Records wholly before the cut survive.
			for i, b := range boundaries[1:] {
				if cut >= b {
					wantRecs = i + 1
				}
			}
		}
		if len(got) != wantRecs {
			t.Errorf("cut=%d: recovered %d records, want %d", cut, len(got), wantRecs)
		}
		_, atBoundary := onBoundary[cut]
		if headerOK {
			wantTorn := !atBoundary
			if stats.TornTail != wantTorn {
				t.Errorf("cut=%d: TornTail=%v, want %v", cut, stats.TornTail, wantTorn)
			}
			if wantTorn {
				wantBytes := cut - boundaries[wantRecs]
				if stats.TornTailBytes != wantBytes {
					t.Errorf("cut=%d: TornTailBytes=%d, want %d", cut, stats.TornTailBytes, wantBytes)
				}
			}
		}

		// The store must be usable after any crash shape: append one
		// record and recover everything on the next open.
		extra := Record{Op: OpReprofile, Kernel: "post-crash"}
		if _, err := s.Append(extra); err != nil {
			t.Fatalf("cut=%d: append after recovery: %v", cut, err)
		}
		if err := s.Close(); err != nil {
			t.Fatalf("cut=%d: close: %v", cut, err)
		}
		_, got2, stats2, err := Open(path, Options{})
		if err != nil {
			t.Fatalf("cut=%d: reopen: %v", cut, err)
		}
		if stats2.TornTail || stats2.CorruptRecords != 0 {
			t.Errorf("cut=%d: reopen after truncation still dirty: %+v", cut, stats2)
		}
		if len(got2) != wantRecs+1 || !recordsEqual(got2[len(got2)-1], extra) {
			t.Errorf("cut=%d: reopen recovered %d records, want %d", cut, len(got2), wantRecs+1)
		}
		os.Remove(path)
		os.Remove(WALPath(path))
	}
}

// TestByteFlipMatrix flips every byte of a valid WAL image in turn and
// asserts recovery never panics, never fabricates a record that was not
// written (the CRC gate), and loses at most the records the flipped
// frame touches.
func TestByteFlipMatrix(t *testing.T) {
	recs := sampleRecords()
	data, _ := buildWALImage(recs)
	for off := 0; off < len(data); off++ {
		mut := bytes.Clone(data)
		mut[off] ^= 0xFF
		hdr, got, lastGood, stats, headerOK := decodeFile(mut)
		if lastGood < 0 || lastGood > int64(len(mut)) {
			t.Fatalf("off=%d: lastGood=%d out of range", off, lastGood)
		}
		if off < headerLen {
			if headerOK && hdr.kind == kindWAL && hdr.gen == 1 {
				t.Errorf("off=%d: header flip went unnoticed", off)
			}
			continue
		}
		if !headerOK {
			t.Errorf("off=%d: body flip corrupted the header", off)
			continue
		}
		// Every recovered record must be byte-for-byte one of the
		// originals: corruption may drop records, never invent them.
		for _, g := range got {
			found := false
			for _, w := range recs {
				if recordsEqual(g, w) {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("off=%d: recovery fabricated record %+v", off, g)
			}
		}
		if len(got) >= len(recs) {
			t.Errorf("off=%d: flip lost no records (%d recovered) yet should corrupt one", off, len(got))
		}
		if len(got) < len(recs)-2 {
			t.Errorf("off=%d: flip lost %d records, resync should bound the damage", off, len(recs)-len(got))
		}
		if stats.CorruptRecords == 0 && !stats.TornTail {
			t.Errorf("off=%d: lost records but stats report nothing: %+v", off, stats)
		}
	}
}

func TestFaultInjectionDisablesStore(t *testing.T) {
	cases := []struct {
		name string
		arm  func(p *faultinject.Plan)
	}{
		{"write-error", func(p *faultinject.Plan) { p.FailWALWrites(1) }},
		{"short-write", func(p *faultinject.Plan) { p.ShortWALWrites(1) }},
		{"no-space", func(p *faultinject.Plan) { p.FillWALDisk(1) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := tempStatePath(t)
			plan := faultinject.New(1)
			s, _, _, err := Open(path, Options{Sync: SyncAlways, Faults: plan})
			if err != nil {
				t.Fatal(err)
			}
			good := sampleRecords()
			for _, r := range good[:2] {
				if _, err := s.Append(r); err != nil {
					t.Fatal(err)
				}
			}
			tc.arm(plan)
			if _, err := s.Append(good[2]); err == nil {
				t.Fatal("injected fault did not fail the append")
			}
			if s.Err() == nil {
				t.Error("Err() nil after write failure")
			}
			// Degraded, permanently: every later call short-circuits.
			if _, err := s.Append(good[3]); err != ErrDisabled {
				t.Errorf("append after failure = %v, want ErrDisabled", err)
			}
			if err := s.Compact(nil); err != ErrDisabled {
				t.Errorf("compact after failure = %v, want ErrDisabled", err)
			}
			if err := s.Sync(); err != ErrDisabled {
				t.Errorf("sync after failure = %v, want ErrDisabled", err)
			}
			if s.NeedsCompaction() {
				t.Error("disabled store still asks for compaction")
			}
			if err := s.Close(); err != nil {
				t.Errorf("disabled close: %v", err)
			}

			// Whatever the fault left on disk — including the short
			// write's torn frame — must recover cleanly.
			s2, got, stats, err := Open(path, Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer s2.Close()
			if len(got) != 2 {
				t.Errorf("recovered %d records, want the 2 pre-fault ones", len(got))
			}
			if tc.name == "short-write" && !stats.TornTail {
				t.Error("short write should leave a torn tail for recovery to truncate")
			}
		})
	}
}

func TestSnapshotFileRoundTrip(t *testing.T) {
	path := tempStatePath(t)
	full := []Record{
		{Op: OpFull, Kernel: "a", Alpha: 0.5, Items: 10, Invocations: 2, Category: 1, At: time.Unix(1700000000, 0)},
		{Op: OpFull, Kernel: "b", Alpha: 0, Items: 1, Invocations: 1, Category: 0, Reprofile: true, At: time.Unix(1700000001, 0)},
	}
	if err := WriteSnapshotFile(path, full); err != nil {
		t.Fatal(err)
	}
	got, stats, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if stats.SnapshotRecords != len(full) || stats.CorruptRecords != 0 {
		t.Errorf("stats = %+v", stats)
	}
	for i := range full {
		if !recordsEqual(got[i], full[i]) {
			t.Errorf("record %d = %+v, want %+v", i, got[i], full[i])
		}
	}
	// No temp files left behind.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("snapshot write left %d files in the directory", len(entries))
	}
}

func TestCorruptSnapshotStartsCold(t *testing.T) {
	path := tempStatePath(t)
	if err := os.WriteFile(path, []byte("not a statestore file at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, recs, stats, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if len(recs) != 0 || stats.CorruptRecords != 1 {
		t.Errorf("corrupt snapshot: recs=%d stats=%+v", len(recs), stats)
	}
}

func TestLongKernelNameTruncated(t *testing.T) {
	path := tempStatePath(t)
	s, _, _, err := Open(path, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	long := string(bytes.Repeat([]byte("k"), maxNameLen+100))
	if _, err := s.Append(Record{Op: OpReprofile, Kernel: long}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	_, recs, _, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || len(recs[0].Kernel) != maxNameLen {
		t.Errorf("oversized name not truncated to the wire cap: %d", len(recs[0].Kernel))
	}
}
