// Package svgchart renders the reproduction's figures as standalone
// SVG documents using only the standard library — line charts for the
// power-over-time traces and α sweeps (paper Figs. 1-6) and grouped bar
// charts for the efficiency grids (Figs. 9-12). The output is plain
// SVG 1.1, viewable in any browser.
package svgchart

import (
	"fmt"
	"math"
	"strings"
)

// Palette is the default series palette (colorblind-friendly).
var Palette = []string{"#4477aa", "#ee6677", "#228833", "#ccbb44", "#66ccee", "#aa3377", "#bbbbbb"}

const (
	defaultWidth  = 720
	defaultHeight = 420
	marginLeft    = 64
	marginRight   = 20
	marginTop     = 40
	marginBottom  = 52
)

// Series is one line of a LineChart.
type Series struct {
	// Name appears in the legend.
	Name string
	// X and Y are the sample coordinates (equal length, ≥ 2 points).
	X, Y []float64
}

// LineChart plots one or more series over a shared numeric axis.
type LineChart struct {
	Title, XLabel, YLabel string
	Series                []Series
	// Width and Height override the default 720×420 canvas.
	Width, Height int
	// YMin/YMax fix the y-range; both zero selects auto-scaling.
	YMin, YMax float64
}

// Render produces the SVG document.
func (c *LineChart) Render() (string, error) {
	if len(c.Series) == 0 {
		return "", fmt.Errorf("svgchart: line chart %q has no series", c.Title)
	}
	var xLo, xHi, yLo, yHi float64
	first := true
	for _, s := range c.Series {
		if len(s.X) != len(s.Y) {
			return "", fmt.Errorf("svgchart: series %q has %d x values and %d y values", s.Name, len(s.X), len(s.Y))
		}
		if len(s.X) < 2 {
			return "", fmt.Errorf("svgchart: series %q needs at least 2 points", s.Name)
		}
		for i := range s.X {
			if first {
				xLo, xHi, yLo, yHi = s.X[i], s.X[i], s.Y[i], s.Y[i]
				first = false
				continue
			}
			xLo = math.Min(xLo, s.X[i])
			xHi = math.Max(xHi, s.X[i])
			yLo = math.Min(yLo, s.Y[i])
			yHi = math.Max(yHi, s.Y[i])
		}
	}
	if !(c.YMin == 0 && c.YMax == 0) {
		yLo, yHi = c.YMin, c.YMax
	}
	if xHi == xLo {
		xHi = xLo + 1
	}
	if yHi == yLo {
		yHi = yLo + 1
	}

	g := newGeometry(c.Width, c.Height)
	var b strings.Builder
	g.open(&b, c.Title)
	g.axes(&b, xLo, xHi, yLo, yHi, c.XLabel, c.YLabel)
	for i, s := range c.Series {
		color := Palette[i%len(Palette)]
		var path strings.Builder
		for j := range s.X {
			cmd := "L"
			if j == 0 {
				cmd = "M"
			}
			fmt.Fprintf(&path, "%s%.2f %.2f ", cmd, g.px(s.X[j], xLo, xHi), g.py(s.Y[j], yLo, yHi))
		}
		fmt.Fprintf(&b, `<path d=%q fill="none" stroke="%s" stroke-width="1.8"/>`+"\n",
			strings.TrimSpace(path.String()), color)
	}
	g.legend(&b, seriesNames(c.Series))
	b.WriteString("</svg>\n")
	return b.String(), nil
}

func seriesNames(ss []Series) []string {
	names := make([]string, len(ss))
	for i, s := range ss {
		names[i] = s.Name
	}
	return names
}

// BarGroup is one cluster of a grouped bar chart (one workload).
type BarGroup struct {
	Label  string
	Values []float64
}

// BarChart plots grouped bars — the efficiency figures' layout.
type BarChart struct {
	Title, YLabel string
	// SeriesNames label the bars within each group (strategies).
	SeriesNames []string
	Groups      []BarGroup
	// RefLine draws a horizontal reference (the Oracle's 100%).
	RefLine float64
	// Width and Height override the default canvas.
	Width, Height int
}

// Render produces the SVG document.
func (c *BarChart) Render() (string, error) {
	if len(c.Groups) == 0 || len(c.SeriesNames) == 0 {
		return "", fmt.Errorf("svgchart: bar chart %q has no data", c.Title)
	}
	yHi := c.RefLine
	for _, grp := range c.Groups {
		if len(grp.Values) != len(c.SeriesNames) {
			return "", fmt.Errorf("svgchart: group %q has %d values for %d series", grp.Label, len(grp.Values), len(c.SeriesNames))
		}
		for _, v := range grp.Values {
			if v < 0 {
				return "", fmt.Errorf("svgchart: group %q has negative value %v", grp.Label, v)
			}
			yHi = math.Max(yHi, v)
		}
	}
	if yHi == 0 {
		yHi = 1
	}
	yHi *= 1.05

	width := c.Width
	if width == 0 {
		// Scale with group count so labels stay readable.
		width = marginLeft + marginRight + len(c.Groups)*(18*len(c.SeriesNames)+16)
		if width < defaultWidth {
			width = defaultWidth
		}
	}
	g := newGeometry(width, c.Height)
	var b strings.Builder
	g.open(&b, c.Title)
	g.axes(&b, 0, float64(len(c.Groups)), 0, yHi, "", c.YLabel)

	groupW := g.plotW / float64(len(c.Groups))
	barW := groupW * 0.8 / float64(len(c.SeriesNames))
	for gi, grp := range c.Groups {
		x0 := float64(marginLeft) + float64(gi)*groupW + groupW*0.1
		for si, v := range grp.Values {
			color := Palette[si%len(Palette)]
			x := x0 + float64(si)*barW
			y := g.py(v, 0, yHi)
			h := g.py(0, 0, yHi) - y
			fmt.Fprintf(&b, `<rect x="%.2f" y="%.2f" width="%.2f" height="%.2f" fill="%s"/>`+"\n",
				x, y, barW*0.92, h, color)
		}
		fmt.Fprintf(&b, `<text x="%.2f" y="%d" font-size="11" text-anchor="middle">%s</text>`+"\n",
			x0+groupW*0.4, g.height-marginBottom+16, escape(grp.Label))
	}
	if c.RefLine > 0 {
		y := g.py(c.RefLine, 0, yHi)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.2f" x2="%.2f" y2="%.2f" stroke="#888" stroke-dasharray="5,4"/>`+"\n",
			marginLeft, y, float64(marginLeft)+g.plotW, y)
	}
	g.legend(&b, c.SeriesNames)
	b.WriteString("</svg>\n")
	return b.String(), nil
}

// geometry handles the shared canvas math.
type geometry struct {
	width, height int
	plotW, plotH  float64
}

func newGeometry(w, h int) geometry {
	if w <= 0 {
		w = defaultWidth
	}
	if h <= 0 {
		h = defaultHeight
	}
	return geometry{
		width: w, height: h,
		plotW: float64(w - marginLeft - marginRight),
		plotH: float64(h - marginTop - marginBottom),
	}
}

func (g geometry) px(x, lo, hi float64) float64 {
	return float64(marginLeft) + (x-lo)/(hi-lo)*g.plotW
}

func (g geometry) py(y, lo, hi float64) float64 {
	return float64(marginTop) + (1-(y-lo)/(hi-lo))*g.plotH
}

func (g geometry) open(b *strings.Builder, title string) {
	fmt.Fprintf(b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="sans-serif">`+"\n",
		g.width, g.height, g.width, g.height)
	fmt.Fprintf(b, `<rect width="%d" height="%d" fill="white"/>`+"\n", g.width, g.height)
	fmt.Fprintf(b, `<text x="%d" y="22" font-size="14" font-weight="bold">%s</text>`+"\n",
		marginLeft, escape(title))
}

// axes draws the frame, y ticks, and axis labels; x ticks are drawn for
// line charts only (lo != hi in a numeric sense and xLabel provided).
func (g geometry) axes(b *strings.Builder, xLo, xHi, yLo, yHi float64, xLabel, yLabel string) {
	x0, y0 := float64(marginLeft), float64(marginTop)
	fmt.Fprintf(b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="none" stroke="#333"/>`+"\n",
		x0, y0, g.plotW, g.plotH)
	for _, tv := range niceTicks(yLo, yHi, 6) {
		y := g.py(tv, yLo, yHi)
		fmt.Fprintf(b, `<line x1="%.1f" y1="%.2f" x2="%.1f" y2="%.2f" stroke="#ddd"/>`+"\n",
			x0, y, x0+g.plotW, y)
		fmt.Fprintf(b, `<text x="%.1f" y="%.2f" font-size="11" text-anchor="end">%s</text>`+"\n",
			x0-6, y+4, formatTick(tv))
	}
	if xLabel != "" {
		for _, tv := range niceTicks(xLo, xHi, 8) {
			x := g.px(tv, xLo, xHi)
			fmt.Fprintf(b, `<line x1="%.2f" y1="%.1f" x2="%.2f" y2="%.1f" stroke="#ccc"/>`+"\n",
				x, y0+g.plotH, x, y0+g.plotH+4)
			fmt.Fprintf(b, `<text x="%.2f" y="%.1f" font-size="11" text-anchor="middle">%s</text>`+"\n",
				x, y0+g.plotH+18, formatTick(tv))
		}
		fmt.Fprintf(b, `<text x="%.1f" y="%d" font-size="12" text-anchor="middle">%s</text>`+"\n",
			x0+g.plotW/2, g.height-8, escape(xLabel))
	}
	if yLabel != "" {
		fmt.Fprintf(b, `<text x="14" y="%.1f" font-size="12" text-anchor="middle" transform="rotate(-90 14 %.1f)">%s</text>`+"\n",
			y0+g.plotH/2, y0+g.plotH/2, escape(yLabel))
	}
}

func (g geometry) legend(b *strings.Builder, names []string) {
	x := float64(marginLeft) + 8
	y := float64(marginTop) + 6
	for i, name := range names {
		color := Palette[i%len(Palette)]
		fmt.Fprintf(b, `<rect x="%.1f" y="%.1f" width="10" height="10" fill="%s"/>`+"\n", x, y, color)
		fmt.Fprintf(b, `<text x="%.1f" y="%.1f" font-size="11">%s</text>`+"\n", x+14, y+9, escape(name))
		x += 18 + 7*float64(len(name)+2)
		_ = i
	}
}

// niceTicks returns ~n round tick values covering [lo, hi].
func niceTicks(lo, hi float64, n int) []float64 {
	if n < 2 {
		n = 2
	}
	span := hi - lo
	if span <= 0 {
		return []float64{lo}
	}
	raw := span / float64(n)
	mag := math.Pow(10, math.Floor(math.Log10(raw)))
	var step float64
	switch {
	case raw/mag < 1.5:
		step = mag
	case raw/mag < 3.5:
		step = 2 * mag
	case raw/mag < 7.5:
		step = 5 * mag
	default:
		step = 10 * mag
	}
	var ticks []float64
	for v := math.Ceil(lo/step) * step; v <= hi+step*1e-9; v += step {
		ticks = append(ticks, v)
	}
	return ticks
}

func formatTick(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1e9:
		return fmt.Sprintf("%.3gG", v/1e9)
	case av >= 1e6:
		return fmt.Sprintf("%.3gM", v/1e6)
	case av >= 1e3:
		return fmt.Sprintf("%.3gk", v/1e3)
	case av > 0 && av < 0.01:
		return fmt.Sprintf("%.2g", v)
	}
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.2f", v), "0"), ".")
}

// escape sanitizes text for embedding in SVG.
func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
