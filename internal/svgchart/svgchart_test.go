package svgchart

import (
	"encoding/xml"
	"strings"
	"testing"
)

// wellFormed checks the SVG parses as XML.
func wellFormed(t *testing.T, doc string) {
	t.Helper()
	dec := xml.NewDecoder(strings.NewReader(doc))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				return
			}
			t.Fatalf("SVG not well-formed: %v\n%s", err, doc)
		}
	}
}

func TestLineChartRender(t *testing.T) {
	c := &LineChart{
		Title:  "Power over time",
		XLabel: "seconds",
		YLabel: "watts",
		Series: []Series{
			{Name: "package", X: []float64{0, 1, 2, 3}, Y: []float64{12, 58, 40, 58}},
			{Name: "gpu", X: []float64{0, 1, 2, 3}, Y: []float64{0, 18, 18, 4}},
		},
	}
	doc, err := c.Render()
	if err != nil {
		t.Fatal(err)
	}
	wellFormed(t, doc)
	for _, want := range []string{"Power over time", "package", "gpu", "watts", "<path", "xmlns"} {
		if !strings.Contains(doc, want) {
			t.Errorf("missing %q in output", want)
		}
	}
	// Two series → two path elements.
	if n := strings.Count(doc, "<path"); n != 2 {
		t.Errorf("found %d paths, want 2", n)
	}
}

func TestLineChartValidation(t *testing.T) {
	if _, err := (&LineChart{Title: "empty"}).Render(); err == nil {
		t.Error("empty chart accepted")
	}
	bad := &LineChart{Series: []Series{{Name: "x", X: []float64{1, 2}, Y: []float64{1}}}}
	if _, err := bad.Render(); err == nil {
		t.Error("mismatched lengths accepted")
	}
	short := &LineChart{Series: []Series{{Name: "x", X: []float64{1}, Y: []float64{1}}}}
	if _, err := short.Render(); err == nil {
		t.Error("single-point series accepted")
	}
}

func TestLineChartDegenerateRanges(t *testing.T) {
	// Constant series must not divide by zero.
	c := &LineChart{Series: []Series{{Name: "flat", X: []float64{0, 0}, Y: []float64{5, 5}}}}
	doc, err := c.Render()
	if err != nil {
		t.Fatal(err)
	}
	wellFormed(t, doc)
	if strings.Contains(doc, "NaN") || strings.Contains(doc, "Inf") {
		t.Error("degenerate range produced NaN/Inf coordinates")
	}
}

func TestBarChartRender(t *testing.T) {
	c := &BarChart{
		Title:       "Figure 9",
		YLabel:      "% of Oracle",
		SeriesNames: []string{"CPU", "GPU", "PERF", "EAS"},
		Groups: []BarGroup{
			{Label: "BH", Values: []float64{36, 87, 100, 100}},
			{Label: "BFS", Values: []float64{57, 87, 103, 103}},
		},
		RefLine: 100,
	}
	doc, err := c.Render()
	if err != nil {
		t.Fatal(err)
	}
	wellFormed(t, doc)
	// 2 groups × 4 series bars + background + frame + legend swatches.
	if n := strings.Count(doc, "<rect"); n < 8 {
		t.Errorf("found %d rects, want ≥8 bars", n)
	}
	if !strings.Contains(doc, "stroke-dasharray") {
		t.Error("reference line missing")
	}
	for _, want := range []string{"BH", "BFS", "EAS"} {
		if !strings.Contains(doc, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestBarChartValidation(t *testing.T) {
	if _, err := (&BarChart{Title: "x"}).Render(); err == nil {
		t.Error("empty bar chart accepted")
	}
	bad := &BarChart{SeriesNames: []string{"a", "b"}, Groups: []BarGroup{{Label: "g", Values: []float64{1}}}}
	if _, err := bad.Render(); err == nil {
		t.Error("ragged group accepted")
	}
	neg := &BarChart{SeriesNames: []string{"a"}, Groups: []BarGroup{{Label: "g", Values: []float64{-1}}}}
	if _, err := neg.Render(); err == nil {
		t.Error("negative value accepted")
	}
}

func TestEscaping(t *testing.T) {
	c := &LineChart{
		Title:  `<script>&"attack"</script>`,
		Series: []Series{{Name: "a<b", X: []float64{0, 1}, Y: []float64{0, 1}}},
	}
	doc, err := c.Render()
	if err != nil {
		t.Fatal(err)
	}
	wellFormed(t, doc)
	if strings.Contains(doc, "<script>") {
		t.Error("title not escaped")
	}
}

func TestNiceTicks(t *testing.T) {
	ticks := niceTicks(0, 100, 6)
	if len(ticks) < 4 || len(ticks) > 8 {
		t.Errorf("tick count %d for [0,100]", len(ticks))
	}
	for _, v := range ticks {
		if v < 0 || v > 100.0001 {
			t.Errorf("tick %v outside range", v)
		}
	}
	if got := niceTicks(5, 5, 4); len(got) != 1 {
		t.Errorf("degenerate range ticks = %v", got)
	}
}

func TestFormatTick(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		12:      "12",
		0.5:     "0.5",
		1500:    "1.5k",
		2.5e6:   "2.5M",
		3.9e9:   "3.9G",
		0.00123: "0.0012",
	}
	for v, want := range cases {
		if got := formatTick(v); got != want {
			t.Errorf("formatTick(%v) = %q, want %q", v, got, want)
		}
	}
}
