// Package trace records time series produced by the platform
// simulation — package power, per-device utilization and frequency —
// and offers the integration and rendering primitives the experiment
// harness needs to regenerate the paper's power-over-time figures
// (Figs. 2, 3, 4) and the α-sweep curves (Fig. 1, Figs. 5-6).
package trace

import (
	"fmt"
	"io"
	"math"
	"strings"
	"time"
)

// Sample is one point of a time series.
type Sample struct {
	T time.Duration // virtual time
	V float64       // value (watts, ratio, hertz, ...)
}

// Series is an append-only time series. The zero value is ready to use.
type Series struct {
	Name    string
	Unit    string
	Samples []Sample
}

// NewSeries returns an empty named series.
func NewSeries(name, unit string) *Series {
	return &Series{Name: name, Unit: unit}
}

// Append adds a sample. Samples are expected in non-decreasing time
// order; Append panics otherwise since the simulation only moves
// forward. Runtime producers feeding a series from data they do not
// control should use TryAppend instead.
func (s *Series) Append(t time.Duration, v float64) {
	if err := s.TryAppend(t, v); err != nil {
		panic(err.Error())
	}
}

// TryAppend adds a sample, returning an error (and appending nothing)
// when t precedes the last sample's time. It is the non-panicking
// Append for producers whose timestamps come from external or
// reconstructed data rather than the forward-only simulation clock.
func (s *Series) TryAppend(t time.Duration, v float64) error {
	if n := len(s.Samples); n > 0 && t < s.Samples[n-1].T {
		return fmt.Errorf("trace: time went backwards: %v after %v", t, s.Samples[n-1].T)
	}
	s.Samples = append(s.Samples, Sample{T: t, V: v})
	return nil
}

// Grow pre-sizes the series for n additional samples, so a producer
// that knows its sample count up front (a fixed recording grid, a sweep
// with a known point count) appends without intermediate reallocation.
// Appending past the reserved capacity stays correct — it just
// reallocates as usual.
func (s *Series) Grow(n int) {
	if n <= 0 {
		return
	}
	if free := cap(s.Samples) - len(s.Samples); free < n {
		grown := make([]Sample, len(s.Samples), len(s.Samples)+n)
		copy(grown, s.Samples)
		s.Samples = grown
	}
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.Samples) }

// Duration returns the time span covered by the series.
func (s *Series) Duration() time.Duration {
	if len(s.Samples) == 0 {
		return 0
	}
	return s.Samples[len(s.Samples)-1].T - s.Samples[0].T
}

// Mean returns the time-weighted mean value. For a series sampled on a
// uniform grid this equals the arithmetic mean of the samples; for
// non-uniform series each sample's value is held until the next sample
// (left Riemann). Returns NaN for fewer than one sample.
func (s *Series) Mean() float64 {
	switch len(s.Samples) {
	case 0:
		return math.NaN()
	case 1:
		return s.Samples[0].V
	}
	integral, span := s.integrate()
	if span == 0 {
		return s.Samples[0].V
	}
	return integral / span
}

// Integral returns ∫ v dt in (value-unit)·seconds. For a power series in
// watts this is energy in joules.
func (s *Series) Integral() float64 {
	integral, _ := s.integrate()
	return integral
}

func (s *Series) integrate() (integral, span float64) {
	for i := 0; i+1 < len(s.Samples); i++ {
		dt := (s.Samples[i+1].T - s.Samples[i].T).Seconds()
		integral += s.Samples[i].V * dt
		span += dt
	}
	return integral, span
}

// Max returns the maximum sample value, or NaN if empty.
func (s *Series) Max() float64 {
	if len(s.Samples) == 0 {
		return math.NaN()
	}
	m := s.Samples[0].V
	for _, p := range s.Samples[1:] {
		if p.V > m {
			m = p.V
		}
	}
	return m
}

// Min returns the minimum sample value, or NaN if empty.
func (s *Series) Min() float64 {
	if len(s.Samples) == 0 {
		return math.NaN()
	}
	m := s.Samples[0].V
	for _, p := range s.Samples[1:] {
		if p.V < m {
			m = p.V
		}
	}
	return m
}

// MeanBetween returns the time-weighted mean of samples with
// t0 <= T < t1, NaN when the window is empty.
func (s *Series) MeanBetween(t0, t1 time.Duration) float64 {
	var integral, span float64
	for i := 0; i+1 < len(s.Samples); i++ {
		if s.Samples[i].T < t0 || s.Samples[i].T >= t1 {
			continue
		}
		dt := (s.Samples[i+1].T - s.Samples[i].T).Seconds()
		integral += s.Samples[i].V * dt
		span += dt
	}
	if span == 0 {
		return math.NaN()
	}
	return integral / span
}

// Downsample returns a copy of the series keeping every k-th sample
// (k ≥ 1), always including the final sample so Duration is preserved.
func (s *Series) Downsample(k int) *Series {
	if k < 1 {
		k = 1
	}
	out := NewSeries(s.Name, s.Unit)
	for i := 0; i < len(s.Samples); i += k {
		out.Samples = append(out.Samples, s.Samples[i])
	}
	if n := len(s.Samples); n > 0 && (n-1)%k != 0 {
		out.Samples = append(out.Samples, s.Samples[n-1])
	}
	return out
}

// WriteCSV emits "seconds,value" rows with a header line.
func (s *Series) WriteCSV(w io.Writer) error {
	name := s.Name
	if name == "" {
		name = "value"
	}
	if _, err := fmt.Fprintf(w, "seconds,%s\n", name); err != nil {
		return err
	}
	for _, p := range s.Samples {
		if _, err := fmt.Fprintf(w, "%.6f,%.6f\n", p.T.Seconds(), p.V); err != nil {
			return err
		}
	}
	return nil
}

// RenderASCII draws the series as a rows×cols ASCII chart, used by the
// cmd/powertrace tool to reproduce the paper's power-over-time figures
// in a terminal. Empty series render as an empty frame.
func (s *Series) RenderASCII(rows, cols int) string {
	if rows < 2 {
		rows = 2
	}
	if cols < 2 {
		cols = 2
	}
	grid := make([][]byte, rows)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", cols))
	}
	lo, hi := s.Min(), s.Max()
	if len(s.Samples) > 0 && !math.IsNaN(lo) {
		if hi == lo {
			hi = lo + 1
		}
		t0 := s.Samples[0].T
		span := s.Duration()
		for _, p := range s.Samples {
			var x int
			if span > 0 {
				x = int(float64(cols-1) * float64(p.T-t0) / float64(span))
			}
			y := int(float64(rows-1) * (p.V - lo) / (hi - lo))
			row := rows - 1 - y
			grid[row][x] = '*'
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s [%s]  min=%.3g max=%.3g mean=%.3g dur=%s\n",
		s.Name, s.Unit, lo, hi, s.Mean(), s.Duration())
	for i, row := range grid {
		var label string
		switch i {
		case 0:
			label = fmt.Sprintf("%8.3g |", hi)
		case rows - 1:
			label = fmt.Sprintf("%8.3g |", lo)
		default:
			label = "         |"
		}
		b.WriteString(label)
		b.Write(row)
		b.WriteByte('\n')
	}
	b.WriteString("          +" + strings.Repeat("-", cols) + "\n")
	return b.String()
}

// Dip is one excursion of a series below a threshold.
type Dip struct {
	// Start and End bound the excursion (End is the first sample back
	// above the recovery level).
	Start, End time.Duration
	// Min is the lowest value reached.
	Min float64
}

// FindDips locates excursions below `floor` that recover above
// `ceiling` (hysteresis avoids counting jitter as separate dips). Used
// to detect the paper's Fig. 4 power dips programmatically.
func (s *Series) FindDips(floor, ceiling float64) []Dip {
	if ceiling < floor {
		ceiling = floor
	}
	var dips []Dip
	var cur *Dip
	for _, p := range s.Samples {
		switch {
		case cur == nil && p.V < floor:
			dips = append(dips, Dip{Start: p.T, End: p.T, Min: p.V})
			cur = &dips[len(dips)-1]
		case cur != nil && p.V > ceiling:
			cur.End = p.T
			cur = nil
		case cur != nil:
			if p.V < cur.Min {
				cur.Min = p.V
			}
			cur.End = p.T
		}
	}
	return dips
}

// Set bundles the series the engine records for one run.
type Set struct {
	PackagePower *Series // watts
	CPUPower     *Series // watts (core contribution)
	GPUPower     *Series // watts
	DRAMPower    *Series // watts (memory subsystem)
	IdlePower    *Series // watts (uncore floor)
	CPUUtil      *Series // 0..1
	GPUUtil      *Series // 0..1
	CPUFreq      *Series // Hz
	GPUFreq      *Series // Hz
	Temperature  *Series // °C
}

// Grow pre-sizes every series of the set for n additional samples (see
// Series.Grow). The engine calls it with the recording grid's sample
// count before a run so the whole set appends reallocation-free.
func (ts *Set) Grow(n int) {
	for _, s := range []*Series{
		ts.PackagePower, ts.CPUPower, ts.GPUPower, ts.DRAMPower, ts.IdlePower,
		ts.CPUUtil, ts.GPUUtil, ts.CPUFreq, ts.GPUFreq, ts.Temperature,
	} {
		if s != nil {
			s.Grow(n)
		}
	}
}

// NewSet returns a Set with all series allocated.
func NewSet() *Set {
	return &Set{
		PackagePower: NewSeries("package_power", "W"),
		CPUPower:     NewSeries("cpu_power", "W"),
		GPUPower:     NewSeries("gpu_power", "W"),
		DRAMPower:    NewSeries("dram_power", "W"),
		IdlePower:    NewSeries("idle_power", "W"),
		CPUUtil:      NewSeries("cpu_util", "ratio"),
		GPUUtil:      NewSeries("gpu_util", "ratio"),
		CPUFreq:      NewSeries("cpu_freq", "Hz"),
		GPUFreq:      NewSeries("gpu_freq", "Hz"),
		Temperature:  NewSeries("temperature", "C"),
	}
}

// WriteCSV emits all series of the set as one wide CSV table (columns:
// seconds plus one per series), sampled at the PackagePower series'
// timestamps. All series share the engine's recording grid, so rows
// align; shorter series pad with empty cells.
func (ts *Set) WriteCSV(w io.Writer) error {
	cols := []*Series{
		ts.PackagePower, ts.CPUPower, ts.GPUPower, ts.DRAMPower, ts.IdlePower,
		ts.CPUUtil, ts.GPUUtil, ts.CPUFreq, ts.GPUFreq, ts.Temperature,
	}
	if _, err := fmt.Fprint(w, "seconds"); err != nil {
		return err
	}
	for _, c := range cols {
		if _, err := fmt.Fprintf(w, ",%s", c.Name); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	for i, p := range ts.PackagePower.Samples {
		if _, err := fmt.Fprintf(w, "%.6f", p.T.Seconds()); err != nil {
			return err
		}
		for _, c := range cols {
			if i < len(c.Samples) {
				if _, err := fmt.Fprintf(w, ",%.6f", c.Samples[i].V); err != nil {
					return err
				}
			} else if _, err := fmt.Fprint(w, ","); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// EnergyBreakdown integrates each power component over the trace and
// returns the joules attributable to CPU cores, GPU, memory subsystem,
// and the idle/uncore floor.
type EnergyBreakdown struct {
	CPUJ, GPUJ, DRAMJ, IdleJ, TotalJ float64
}

// Breakdown computes the energy split of the recorded run.
func (ts *Set) Breakdown() EnergyBreakdown {
	if ts == nil {
		return EnergyBreakdown{}
	}
	return EnergyBreakdown{
		CPUJ:   ts.CPUPower.Integral(),
		GPUJ:   ts.GPUPower.Integral(),
		DRAMJ:  ts.DRAMPower.Integral(),
		IdleJ:  ts.IdlePower.Integral(),
		TotalJ: ts.PackagePower.Integral(),
	}
}

// Energy returns the integral of package power in joules.
func (ts *Set) Energy() float64 {
	if ts == nil || ts.PackagePower == nil {
		return 0
	}
	return ts.PackagePower.Integral()
}
