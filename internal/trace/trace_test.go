package trace

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

func uniform(vals ...float64) *Series {
	s := NewSeries("test", "W")
	for i, v := range vals {
		s.Append(ms(i), v)
	}
	return s
}

func TestMeanUniform(t *testing.T) {
	s := uniform(10, 20, 30) // left-Riemann over 2ms: (10+20)/2
	if got := s.Mean(); got != 15 {
		t.Errorf("Mean = %v, want 15", got)
	}
}

func TestMeanEdgeCases(t *testing.T) {
	if !math.IsNaN(NewSeries("e", "W").Mean()) {
		t.Error("empty Mean should be NaN")
	}
	if got := uniform(7).Mean(); got != 7 {
		t.Errorf("single-sample Mean = %v, want 7", got)
	}
	s := NewSeries("z", "W")
	s.Append(0, 5)
	s.Append(0, 9) // zero span
	if got := s.Mean(); got != 5 {
		t.Errorf("zero-span Mean = %v, want first value 5", got)
	}
}

func TestIntegralIsEnergy(t *testing.T) {
	// 50 W held for 2 s = 100 J.
	s := NewSeries("p", "W")
	s.Append(0, 50)
	s.Append(2*time.Second, 0)
	if got := s.Integral(); got != 100 {
		t.Errorf("Integral = %v, want 100", got)
	}
}

func TestAppendMonotonicPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on time going backwards")
		}
	}()
	s := NewSeries("t", "W")
	s.Append(ms(5), 1)
	s.Append(ms(4), 1)
}

func TestTryAppendRejectsRegression(t *testing.T) {
	s := NewSeries("t", "W")
	if err := s.TryAppend(ms(5), 1); err != nil {
		t.Fatalf("first append: %v", err)
	}
	if err := s.TryAppend(ms(5), 2); err != nil {
		t.Fatalf("equal-time append must be allowed: %v", err)
	}
	if err := s.TryAppend(ms(4), 3); err == nil {
		t.Fatal("expected error on time going backwards")
	}
	// The failed append must not have modified the series.
	if s.Len() != 2 || s.Samples[1].V != 2 {
		t.Fatalf("series modified by failed append: %+v", s.Samples)
	}
	if err := s.TryAppend(ms(6), 4); err != nil {
		t.Fatalf("append after rejected sample: %v", err)
	}
	if s.Len() != 3 {
		t.Fatalf("len = %d, want 3", s.Len())
	}
}

func TestMinMaxDuration(t *testing.T) {
	s := uniform(3, -2, 8, 0)
	if s.Min() != -2 || s.Max() != 8 {
		t.Errorf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	if s.Duration() != ms(3) {
		t.Errorf("Duration = %v, want 3ms", s.Duration())
	}
	if NewSeries("e", "").Duration() != 0 {
		t.Error("empty Duration should be 0")
	}
}

func TestMeanBetween(t *testing.T) {
	s := uniform(10, 10, 40, 40, 40)
	got := s.MeanBetween(ms(2), ms(4))
	if got != 40 {
		t.Errorf("MeanBetween = %v, want 40", got)
	}
	if !math.IsNaN(s.MeanBetween(ms(100), ms(200))) {
		t.Error("empty window should be NaN")
	}
}

func TestDownsample(t *testing.T) {
	s := uniform(0, 1, 2, 3, 4, 5, 6)
	d := s.Downsample(3)
	wantT := []time.Duration{ms(0), ms(3), ms(6)}
	if d.Len() != 3 {
		t.Fatalf("Downsample len = %d, want 3", d.Len())
	}
	for i, w := range wantT {
		if d.Samples[i].T != w {
			t.Errorf("sample %d at %v, want %v", i, d.Samples[i].T, w)
		}
	}
	// Last sample must always survive.
	s2 := uniform(0, 1, 2, 3, 4)
	d2 := s2.Downsample(3)
	if d2.Samples[d2.Len()-1].T != ms(4) {
		t.Errorf("final sample lost: %+v", d2.Samples)
	}
	if s.Downsample(0).Len() != s.Len() {
		t.Error("k<1 should behave as k=1")
	}
}

func TestWriteCSV(t *testing.T) {
	var b strings.Builder
	s := uniform(1.5, 2.5)
	if err := s.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV lines = %d, want 3: %q", len(lines), b.String())
	}
	if lines[0] != "seconds,test" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "0.000000,1.5") {
		t.Errorf("row 1 = %q", lines[1])
	}
}

func TestRenderASCII(t *testing.T) {
	s := uniform(0, 5, 10, 5, 0)
	out := s.RenderASCII(5, 20)
	if !strings.Contains(out, "*") {
		t.Error("render has no points")
	}
	if !strings.Contains(out, "test [W]") {
		t.Errorf("render missing title: %q", out)
	}
	// Degenerate inputs should not panic.
	_ = NewSeries("e", "").RenderASCII(0, 0)
	_ = uniform(42).RenderASCII(3, 10)
}

func TestSetEnergy(t *testing.T) {
	ts := NewSet()
	ts.PackagePower.Append(0, 30)
	ts.PackagePower.Append(time.Second, 30)
	if got := ts.Energy(); got != 30 {
		t.Errorf("Energy = %v, want 30", got)
	}
	var nilSet *Set
	if nilSet.Energy() != 0 {
		t.Error("nil Set Energy should be 0")
	}
}

func TestFindDips(t *testing.T) {
	// Plateau 60, two dips to 35, idle spike down at the end without
	// recovery.
	s := uniform(60, 60, 35, 34, 60, 60, 36, 60, 30)
	dips := s.FindDips(40, 50)
	if len(dips) != 3 {
		t.Fatalf("found %d dips, want 3: %+v", len(dips), dips)
	}
	if dips[0].Min != 34 {
		t.Errorf("first dip min = %v, want 34", dips[0].Min)
	}
	if dips[0].Start != ms(2) || dips[0].End != ms(4) {
		t.Errorf("first dip span = [%v, %v]", dips[0].Start, dips[0].End)
	}
	// Hysteresis: values between floor and ceiling do not end a dip.
	s2 := uniform(60, 35, 45, 35, 60)
	if got := s2.FindDips(40, 50); len(got) != 1 {
		t.Errorf("hysteresis broken: %d dips, want 1", len(got))
	}
	// Degenerate ceiling below floor is clamped.
	if got := s2.FindDips(40, 10); len(got) == 0 {
		t.Error("clamped ceiling should still find dips")
	}
	if got := NewSeries("e", "").FindDips(1, 2); len(got) != 0 {
		t.Error("empty series should have no dips")
	}
}

// Property: Mean always lies within [Min, Max] for any non-empty series
// on a uniform grid.
func TestMeanWithinBoundsProperty(t *testing.T) {
	f := func(raw []float64) bool {
		vals := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				vals = append(vals, math.Mod(v, 1e6))
			}
		}
		if len(vals) == 0 {
			return true
		}
		s := uniform(vals...)
		m := s.Mean()
		return m >= s.Min()-1e-9 && m <= s.Max()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSetWriteCSV(t *testing.T) {
	ts := NewSet()
	for i := 0; i < 3; i++ {
		tm := ms(i)
		ts.PackagePower.Append(tm, 50)
		ts.CPUPower.Append(tm, 20)
		ts.GPUPower.Append(tm, 15)
		ts.DRAMPower.Append(tm, 10)
		ts.IdlePower.Append(tm, 5)
		ts.CPUUtil.Append(tm, 1)
		ts.GPUUtil.Append(tm, 0)
		ts.CPUFreq.Append(tm, 3.4e9)
		ts.GPUFreq.Append(tm, 0.35e9)
		ts.Temperature.Append(tm, 42)
	}
	var b strings.Builder
	if err := ts.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("CSV lines = %d, want header + 3 rows", len(lines))
	}
	if !strings.HasPrefix(lines[0], "seconds,package_power,cpu_power") {
		t.Errorf("header = %q", lines[0])
	}
	if cells := strings.Split(lines[1], ","); len(cells) != 11 {
		t.Errorf("row has %d cells, want 11", len(cells))
	}
}

func TestSetBreakdown(t *testing.T) {
	ts := NewSet()
	for i := 0; i < 3; i++ {
		tm := time.Duration(i) * time.Second
		ts.PackagePower.Append(tm, 50)
		ts.CPUPower.Append(tm, 20)
		ts.GPUPower.Append(tm, 15)
		ts.DRAMPower.Append(tm, 10)
		ts.IdlePower.Append(tm, 5)
	}
	b := ts.Breakdown()
	if b.TotalJ != 100 || b.CPUJ != 40 || b.GPUJ != 30 || b.DRAMJ != 20 || b.IdleJ != 10 {
		t.Errorf("breakdown = %+v", b)
	}
	var nilSet *Set
	if nilSet.Breakdown() != (EnergyBreakdown{}) {
		t.Error("nil Set breakdown should be zero")
	}
}
