package vmath

import "testing"

func BenchmarkFitPolySixthOrder(b *testing.B) {
	// The characterization's 21-sample sixth-order fit.
	xs := make([]float64, 21)
	ys := make([]float64, 21)
	truth := NewPoly(40, -25, 90, -130, 60, 20, -31)
	for i := range xs {
		xs[i] = float64(i) / 20
		ys[i] = truth.Eval(xs[i])
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := FitPoly(xs, ys, 6); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPolyEval(b *testing.B) {
	p := NewPoly(40, -25, 90, -130, 60, 20, -31)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += p.Eval(float64(i%11) / 10)
	}
	_ = sink
}

func BenchmarkGridMin(b *testing.B) {
	f := func(x float64) float64 { return (x - 0.37) * (x - 0.37) }
	for i := 0; i < b.N; i++ {
		GridMin(f, 0, 1, 10)
	}
}
