package vmath

import (
	"math"
	"testing"
)

// FuzzFitPoly checks the least-squares path never panics and, when it
// reports success, returns a polynomial that is finite on the sample
// range.
func FuzzFitPoly(f *testing.F) {
	f.Add(1.0, 2.0, 3.0, 4.0, uint8(2))
	f.Add(0.0, 0.0, 0.0, 0.0, uint8(1))
	f.Add(-5.5, 100.25, 3.75, -0.001, uint8(3))
	f.Fuzz(func(t *testing.T, a, b, c, d float64, degRaw uint8) {
		for _, v := range []float64{a, b, c, d} {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
				t.Skip()
			}
		}
		degree := int(degRaw % 4)
		xs := []float64{0, 0.25, 0.5, 0.75, 1}
		ys := []float64{a, b, c, d, a + b}
		p, err := FitPoly(xs, ys, degree)
		if err != nil {
			return
		}
		for _, x := range xs {
			if v := p.Eval(x); math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("fit evaluates to %v at %v (coeffs %v)", v, x, p.Coeffs)
			}
		}
	})
}

// FuzzGridMin checks the grid search returns a point on the grid whose
// value is genuinely minimal over the grid.
func FuzzGridMin(f *testing.F) {
	f.Add(1.0, -2.0, 0.5)
	f.Add(0.0, 0.0, 0.0)
	f.Fuzz(func(t *testing.T, a, b, c float64) {
		for _, v := range []float64{a, b, c} {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e9 {
				t.Skip()
			}
		}
		fn := func(x float64) float64 { return a*x*x + b*x + c }
		arg, val := GridMin(fn, 0, 1, 10)
		if math.IsNaN(val) {
			t.Skip()
		}
		for i := 0; i <= 10; i++ {
			x := float64(i) / 10
			if fn(x) < val-1e-9 {
				t.Fatalf("grid point %v (=%v) beats reported min %v at %v", x, fn(x), val, arg)
			}
		}
	})
}
