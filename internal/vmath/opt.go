package vmath

import "math"

// GridMin evaluates f on the closed interval [lo, hi] at uniform steps
// and returns the argmin and minimum value. steps is the number of
// intervals, so steps+1 points are evaluated; the paper's scheduler uses
// steps = 10 (α increments of 0.1). Ties are broken toward the smaller
// argument, matching a low-to-high scan.
func GridMin(f func(float64) float64, lo, hi float64, steps int) (argmin, minval float64) {
	if steps < 1 {
		steps = 1
	}
	argmin = lo
	minval = math.Inf(1)
	for i := 0; i <= steps; i++ {
		x := lo + (hi-lo)*float64(i)/float64(steps)
		v := f(x)
		if v < minval {
			minval = v
			argmin = x
		}
	}
	return argmin, minval
}

// GridMinRefined runs GridMin and then refines the winner with a golden
// section search on the bracketing interval, returning whichever of the
// two results is better. Golden section assumes unimodality inside the
// bracket; keeping the coarse winner as a floor guarantees the refined
// answer is never worse than the plain grid even when that assumption
// breaks. Used by the scheduler's RefineAlpha mode and the ablation
// benches.
func GridMinRefined(f func(float64) float64, lo, hi float64, steps int, tol float64) (argmin, minval float64) {
	coarse, cval := GridMin(f, lo, hi, steps)
	h := (hi - lo) / float64(steps)
	a := math.Max(lo, coarse-h)
	b := math.Min(hi, coarse+h)
	rx, rv := GoldenMin(f, a, b, tol)
	if rv < cval {
		return rx, rv
	}
	return coarse, cval
}

// GoldenMin minimizes a unimodal f on [a, b] via golden-section search
// down to interval width tol. For non-unimodal f it still converges to a
// local minimum inside the bracket.
func GoldenMin(f func(float64) float64, a, b float64, tol float64) (argmin, minval float64) {
	if b < a {
		a, b = b, a
	}
	if tol <= 0 {
		tol = 1e-6
	}
	const invPhi = 0.6180339887498949
	c := b - (b-a)*invPhi
	d := a + (b-a)*invPhi
	fc, fd := f(c), f(d)
	for b-a > tol {
		if fc < fd {
			b, d, fd = d, c, fc
			c = b - (b-a)*invPhi
			fc = f(c)
		} else {
			a, c, fc = c, d, fd
			d = a + (b-a)*invPhi
			fd = f(d)
		}
	}
	x := (a + b) / 2
	return x, f(x)
}

// Clamp limits v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Lerp linearly interpolates between a and b by t ∈ [0,1].
func Lerp(a, b, t float64) float64 { return a + (b-a)*t }
