package vmath

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGridMinQuadratic(t *testing.T) {
	f := func(x float64) float64 { return (x - 0.3) * (x - 0.3) }
	arg, val := GridMin(f, 0, 1, 10)
	if !AlmostEqual(arg, 0.3, 1e-12) {
		t.Errorf("argmin = %v, want 0.3", arg)
	}
	if !AlmostEqual(val, 0, 1e-12) {
		t.Errorf("minval = %v, want 0", val)
	}
}

func TestGridMinEndpoints(t *testing.T) {
	// Monotone decreasing → min at hi.
	arg, _ := GridMin(func(x float64) float64 { return -x }, 0, 1, 10)
	if arg != 1 {
		t.Errorf("argmin = %v, want 1", arg)
	}
	// Monotone increasing → min at lo.
	arg, _ = GridMin(func(x float64) float64 { return x }, 0, 1, 10)
	if arg != 0 {
		t.Errorf("argmin = %v, want 0", arg)
	}
}

func TestGridMinTieBreaksLow(t *testing.T) {
	// Flat function: scan should keep the first (lowest) point.
	arg, _ := GridMin(func(x float64) float64 { return 42 }, 0, 1, 10)
	if arg != 0 {
		t.Errorf("argmin = %v, want 0 on ties", arg)
	}
}

func TestGridMinDegenerateSteps(t *testing.T) {
	arg, val := GridMin(func(x float64) float64 { return x * x }, 0, 1, 0)
	if arg != 0 || val != 0 {
		t.Errorf("steps=0: got (%v, %v), want (0, 0)", arg, val)
	}
}

func TestGoldenMin(t *testing.T) {
	f := func(x float64) float64 { return math.Cosh(x - 0.7317) }
	arg, val := GoldenMin(f, 0, 2, 1e-9)
	if !AlmostEqual(arg, 0.7317, 1e-6) {
		t.Errorf("argmin = %v, want 0.7317", arg)
	}
	if !AlmostEqual(val, 1, 1e-9) {
		t.Errorf("minval = %v, want 1", val)
	}
	// Reversed bracket is tolerated.
	arg, _ = GoldenMin(f, 2, 0, 1e-9)
	if !AlmostEqual(arg, 0.7317, 1e-6) {
		t.Errorf("reversed bracket argmin = %v", arg)
	}
}

func TestGridMinRefined(t *testing.T) {
	f := func(x float64) float64 { return (x - 0.234) * (x - 0.234) }
	arg, _ := GridMinRefined(f, 0, 1, 10, 1e-9)
	if !AlmostEqual(arg, 0.234, 1e-6) {
		t.Errorf("refined argmin = %v, want 0.234", arg)
	}
}

// Property: GridMinRefined never returns a worse value than GridMin,
// even on multimodal functions where golden section's unimodality
// assumption breaks inside the bracket.
func TestGridMinRefinedNeverWorseProperty(t *testing.T) {
	f := func(a, b, c, freq float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsNaN(c) || math.IsNaN(freq) {
			return true
		}
		a, b, c = math.Mod(a, 10), math.Mod(b, 10), math.Mod(c, 10)
		freq = math.Mod(freq, 40)
		fn := func(x float64) float64 { return a*x*x + b*x + c + math.Sin(freq*x) }
		_, coarse := GridMin(fn, 0, 1, 10)
		_, refined := GridMinRefined(fn, 0, 1, 10, 1e-6)
		return refined <= coarse
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: GridMin's result is never worse than any grid point.
func TestGridMinIsGridOptimalProperty(t *testing.T) {
	f := func(a, b, c float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsNaN(c) {
			return true
		}
		a, b, c = math.Mod(a, 10), math.Mod(b, 10), math.Mod(c, 10)
		fn := func(x float64) float64 { return a*x*x + b*x + c }
		arg, val := GridMin(fn, 0, 1, 20)
		for i := 0; i <= 20; i++ {
			x := float64(i) / 20
			if fn(x) < val-1e-12 {
				return false
			}
		}
		return AlmostEqual(fn(arg), val, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestClampLerp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Error("Clamp misbehaves")
	}
	if Lerp(2, 4, 0.5) != 3 || Lerp(2, 4, 0) != 2 || Lerp(2, 4, 1) != 4 {
		t.Error("Lerp misbehaves")
	}
}
