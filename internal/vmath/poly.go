// Package vmath provides the small numerical toolbox the energy-aware
// runtime needs: dense linear least squares, polynomial fitting and
// evaluation, 1-D grid minimization, and summary statistics.
//
// The paper fits sixth-order polynomials to measured package power as a
// function of the GPU offload ratio α (its "power characterization
// functions"). Those fits are computed here with a QR (Householder)
// least-squares solve over a Vandermonde design matrix, which is far
// better conditioned than the normal equations for order-6 fits on
// [0,1].
package vmath

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Poly is a dense univariate polynomial. Coeffs[i] is the coefficient
// of x^i, so Poly{Coeffs: []float64{1, 2, 3}} is 1 + 2x + 3x².
type Poly struct {
	Coeffs []float64
}

// NewPoly returns a polynomial with the given coefficients in
// ascending-degree order. The slice is copied.
func NewPoly(coeffs ...float64) Poly {
	c := make([]float64, len(coeffs))
	copy(c, coeffs)
	return Poly{Coeffs: c}
}

// Degree returns the nominal degree of p (len(Coeffs)-1), or -1 for an
// empty polynomial. Trailing zero coefficients are not trimmed.
func (p Poly) Degree() int { return len(p.Coeffs) - 1 }

// Eval evaluates p at x using Horner's method.
func (p Poly) Eval(x float64) float64 {
	v := 0.0
	for i := len(p.Coeffs) - 1; i >= 0; i-- {
		v = v*x + p.Coeffs[i]
	}
	return v
}

// Derivative returns p'.
func (p Poly) Derivative() Poly {
	if len(p.Coeffs) <= 1 {
		return Poly{Coeffs: []float64{0}}
	}
	d := make([]float64, len(p.Coeffs)-1)
	for i := 1; i < len(p.Coeffs); i++ {
		d[i-1] = float64(i) * p.Coeffs[i]
	}
	return Poly{Coeffs: d}
}

// Add returns p + q.
func (p Poly) Add(q Poly) Poly {
	n := max(len(p.Coeffs), len(q.Coeffs))
	c := make([]float64, n)
	for i := range c {
		if i < len(p.Coeffs) {
			c[i] += p.Coeffs[i]
		}
		if i < len(q.Coeffs) {
			c[i] += q.Coeffs[i]
		}
	}
	return Poly{Coeffs: c}
}

// Scale returns k·p.
func (p Poly) Scale(k float64) Poly {
	c := make([]float64, len(p.Coeffs))
	for i, v := range p.Coeffs {
		c[i] = k * v
	}
	return Poly{Coeffs: c}
}

// String renders the polynomial in the "y = a + bx + cx^2 ..." style the
// paper prints next to each characterization curve.
func (p Poly) String() string {
	if len(p.Coeffs) == 0 {
		return "0"
	}
	var b strings.Builder
	first := true
	for i, c := range p.Coeffs {
		if c == 0 && len(p.Coeffs) > 1 {
			continue
		}
		if first {
			fmt.Fprintf(&b, "%.4g", c)
		} else if c >= 0 {
			fmt.Fprintf(&b, " + %.4g", c)
		} else {
			fmt.Fprintf(&b, " - %.4g", -c)
		}
		if i == 1 {
			b.WriteString("x")
		} else if i > 1 {
			fmt.Fprintf(&b, "x^%d", i)
		}
		first = false
	}
	if first {
		return "0"
	}
	return b.String()
}

// ErrFitUnderdetermined is returned by FitPoly when there are fewer
// samples than coefficients to fit.
var ErrFitUnderdetermined = errors.New("vmath: fewer samples than polynomial coefficients")

// FitPoly fits a least-squares polynomial of the given degree to the
// samples (xs[i], ys[i]). It requires len(xs) == len(ys) and
// len(xs) >= degree+1.
func FitPoly(xs, ys []float64, degree int) (Poly, error) {
	if len(xs) != len(ys) {
		return Poly{}, fmt.Errorf("vmath: mismatched sample lengths %d and %d", len(xs), len(ys))
	}
	if degree < 0 {
		return Poly{}, fmt.Errorf("vmath: negative degree %d", degree)
	}
	m, n := len(xs), degree+1
	if m < n {
		return Poly{}, fmt.Errorf("%w: %d samples for degree %d", ErrFitUnderdetermined, m, degree)
	}
	// Vandermonde design matrix, row-major.
	a := make([]float64, m*n)
	for i, x := range xs {
		v := 1.0
		for j := 0; j < n; j++ {
			a[i*n+j] = v
			v *= x
		}
	}
	b := make([]float64, m)
	copy(b, ys)
	coeffs, err := SolveLeastSquares(a, b, m, n)
	if err != nil {
		return Poly{}, err
	}
	return Poly{Coeffs: coeffs}, nil
}

// SolveLeastSquares solves min ‖Ax − b‖₂ for an m×n row-major matrix A
// (m ≥ n) using Householder QR. A and b are clobbered.
func SolveLeastSquares(a, b []float64, m, n int) ([]float64, error) {
	if m < n {
		return nil, fmt.Errorf("vmath: least squares needs m >= n, got %dx%d", m, n)
	}
	if len(a) != m*n || len(b) != m {
		return nil, fmt.Errorf("vmath: bad buffer sizes for %dx%d system", m, n)
	}
	for k := 0; k < n; k++ {
		// Householder vector for column k below the diagonal.
		norm := 0.0
		for i := k; i < m; i++ {
			norm = math.Hypot(norm, a[i*n+k])
		}
		if norm == 0 {
			return nil, fmt.Errorf("vmath: rank-deficient matrix at column %d", k)
		}
		if a[k*n+k] > 0 {
			norm = -norm
		}
		for i := k; i < m; i++ {
			a[i*n+k] /= norm
		}
		a[k*n+k] -= 1
		// Apply H = I − vvᵀ/v_k to remaining columns and to b.
		for j := k + 1; j < n; j++ {
			s := 0.0
			for i := k; i < m; i++ {
				s += a[i*n+k] * a[i*n+j]
			}
			s /= a[k*n+k]
			for i := k; i < m; i++ {
				a[i*n+j] += s * a[i*n+k]
			}
		}
		s := 0.0
		for i := k; i < m; i++ {
			s += a[i*n+k] * b[i]
		}
		s /= a[k*n+k]
		for i := k; i < m; i++ {
			b[i] += s * a[i*n+k]
		}
		a[k*n+k] = norm // store R's diagonal
	}
	// Back-substitute Rx = Qᵀb (upper triangle of a, diagonal stashed).
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for j := i + 1; j < n; j++ {
			s -= a[i*n+j] * x[j]
		}
		d := a[i*n+i]
		if d == 0 {
			return nil, fmt.Errorf("vmath: zero pivot at row %d", i)
		}
		x[i] = s / d
	}
	return x, nil
}

// RSquared reports the coefficient of determination of poly against the
// samples: 1 − SS_res/SS_tot. Returns 1 when the samples are constant
// and perfectly matched, and can be negative for terrible fits.
func RSquared(p Poly, xs, ys []float64) float64 {
	if len(xs) == 0 || len(xs) != len(ys) {
		return math.NaN()
	}
	mean := Mean(ys)
	ssRes, ssTot := 0.0, 0.0
	for i, x := range xs {
		r := ys[i] - p.Eval(x)
		ssRes += r * r
		d := ys[i] - mean
		ssTot += d * d
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 1
		}
		return math.Inf(-1)
	}
	return 1 - ssRes/ssTot
}
