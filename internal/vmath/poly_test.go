package vmath

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPolyEvalKnown(t *testing.T) {
	p := NewPoly(1, -2, 3) // 1 - 2x + 3x²
	cases := []struct{ x, want float64 }{
		{0, 1},
		{1, 2},
		{-1, 6},
		{2, 9},
		{0.5, 0.75},
	}
	for _, c := range cases {
		if got := p.Eval(c.x); !AlmostEqual(got, c.want, 1e-12) {
			t.Errorf("Eval(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestPolyEvalEmpty(t *testing.T) {
	var p Poly
	if got := p.Eval(3.7); got != 0 {
		t.Errorf("empty poly Eval = %v, want 0", got)
	}
	if p.Degree() != -1 {
		t.Errorf("empty poly Degree = %d, want -1", p.Degree())
	}
}

func TestPolyDerivative(t *testing.T) {
	p := NewPoly(5, 4, 3, 2) // 5 + 4x + 3x² + 2x³
	d := p.Derivative()
	want := []float64{4, 6, 6}
	if len(d.Coeffs) != len(want) {
		t.Fatalf("derivative has %d coeffs, want %d", len(d.Coeffs), len(want))
	}
	for i := range want {
		if !AlmostEqual(d.Coeffs[i], want[i], 1e-12) {
			t.Errorf("coeff %d = %v, want %v", i, d.Coeffs[i], want[i])
		}
	}
	c := NewPoly(7)
	if dc := c.Derivative(); dc.Eval(100) != 0 {
		t.Errorf("derivative of constant not zero: %v", dc)
	}
}

func TestPolyAddScale(t *testing.T) {
	p := NewPoly(1, 2)
	q := NewPoly(0, 0, 3)
	s := p.Add(q)
	if got := s.Eval(2); !AlmostEqual(got, 1+4+12, 1e-12) {
		t.Errorf("Add eval = %v, want 17", got)
	}
	k := p.Scale(-2)
	if got := k.Eval(3); !AlmostEqual(got, -14, 1e-12) {
		t.Errorf("Scale eval = %v, want -14", got)
	}
}

func TestPolyString(t *testing.T) {
	p := NewPoly(2, 0, -1.5)
	s := p.String()
	if s != "2 - 1.5x^2" {
		t.Errorf("String() = %q", s)
	}
	if NewPoly().String() != "0" {
		t.Errorf("empty String() = %q, want 0", NewPoly().String())
	}
	if NewPoly(0, 0).String() != "0" {
		t.Errorf("zero String() = %q, want 0", NewPoly(0, 0).String())
	}
}

func TestFitPolyExactRecovery(t *testing.T) {
	// A degree-6 fit over exact degree-6 samples must recover the
	// coefficients almost exactly: this is the paper's P(α) setting.
	truth := NewPoly(40, -25, 90, -130, 60, 20, -31)
	xs := make([]float64, 21)
	ys := make([]float64, 21)
	for i := range xs {
		xs[i] = float64(i) / 20
		ys[i] = truth.Eval(xs[i])
	}
	got, err := FitPoly(xs, ys, 6)
	if err != nil {
		t.Fatalf("FitPoly: %v", err)
	}
	for i := range truth.Coeffs {
		if !AlmostEqual(got.Coeffs[i], truth.Coeffs[i], 1e-6) {
			t.Errorf("coeff %d = %v, want %v", i, got.Coeffs[i], truth.Coeffs[i])
		}
	}
	if r2 := RSquared(got, xs, ys); r2 < 1-1e-9 {
		t.Errorf("R² = %v, want ≈1", r2)
	}
}

func TestFitPolyNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	truth := NewPoly(55, -10, 4)
	xs := make([]float64, 101)
	ys := make([]float64, 101)
	for i := range xs {
		xs[i] = float64(i) / 100
		ys[i] = truth.Eval(xs[i]) + rng.NormFloat64()*0.05
	}
	got, err := FitPoly(xs, ys, 2)
	if err != nil {
		t.Fatalf("FitPoly: %v", err)
	}
	for i := range truth.Coeffs {
		if math.Abs(got.Coeffs[i]-truth.Coeffs[i]) > 0.5 {
			t.Errorf("coeff %d = %v, too far from %v", i, got.Coeffs[i], truth.Coeffs[i])
		}
	}
}

func TestFitPolyErrors(t *testing.T) {
	if _, err := FitPoly([]float64{1, 2}, []float64{1}, 1); err == nil {
		t.Error("mismatched lengths: want error")
	}
	if _, err := FitPoly([]float64{1, 2}, []float64{1, 2}, 6); err == nil {
		t.Error("underdetermined: want error")
	}
	if _, err := FitPoly([]float64{1}, []float64{1}, -1); err == nil {
		t.Error("negative degree: want error")
	}
	// Rank-deficient: all x identical.
	if _, err := FitPoly([]float64{2, 2, 2}, []float64{1, 1, 1}, 1); err == nil {
		t.Error("rank-deficient: want error")
	}
}

// Property: fitting a polynomial of degree d to points generated from a
// polynomial of degree ≤ d reproduces those points.
func TestFitPolyInterpolatesProperty(t *testing.T) {
	f := func(c0, c1, c2 float64) bool {
		c0 = math.Mod(c0, 100)
		c1 = math.Mod(c1, 100)
		c2 = math.Mod(c2, 100)
		if math.IsNaN(c0) || math.IsNaN(c1) || math.IsNaN(c2) {
			return true
		}
		truth := NewPoly(c0, c1, c2)
		xs := []float64{0, 0.1, 0.25, 0.4, 0.55, 0.7, 0.85, 1}
		ys := make([]float64, len(xs))
		for i, x := range xs {
			ys[i] = truth.Eval(x)
		}
		fit, err := FitPoly(xs, ys, 3)
		if err != nil {
			return false
		}
		for i, x := range xs {
			if !AlmostEqual(fit.Eval(x), ys[i], 1e-6) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSolveLeastSquaresOverdetermined(t *testing.T) {
	// min ||Ax - b|| with A = [[1,0],[0,1],[1,1]], b = [1,1,3].
	// Normal equations: [[2,1],[1,2]] x = [4,4] → x = [4/3, 4/3].
	a := []float64{1, 0, 0, 1, 1, 1}
	b := []float64{1, 1, 3}
	x, err := SolveLeastSquares(a, b, 3, 2)
	if err != nil {
		t.Fatalf("SolveLeastSquares: %v", err)
	}
	if !AlmostEqual(x[0], 4.0/3, 1e-10) || !AlmostEqual(x[1], 4.0/3, 1e-10) {
		t.Errorf("x = %v, want [4/3 4/3]", x)
	}
}

func TestSolveLeastSquaresBadShapes(t *testing.T) {
	if _, err := SolveLeastSquares(make([]float64, 2), make([]float64, 1), 1, 2); err == nil {
		t.Error("m<n: want error")
	}
	if _, err := SolveLeastSquares(make([]float64, 3), make([]float64, 2), 2, 2); err == nil {
		t.Error("bad buffer: want error")
	}
}

func TestRSquaredDegenerate(t *testing.T) {
	p := NewPoly(5)
	xs := []float64{0, 1, 2}
	if r := RSquared(p, xs, []float64{5, 5, 5}); r != 1 {
		t.Errorf("perfect constant fit R² = %v, want 1", r)
	}
	if r := RSquared(p, xs, []float64{6, 6, 6}); !math.IsInf(r, -1) {
		t.Errorf("wrong constant fit R² = %v, want -Inf", r)
	}
	if r := RSquared(p, nil, nil); !math.IsNaN(r) {
		t.Errorf("empty R² = %v, want NaN", r)
	}
}
