package vmath

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or NaN for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// GeoMean returns the geometric mean of xs. All inputs must be positive;
// non-positive values yield NaN. The paper reports cross-benchmark
// averages; we expose both arithmetic and geometric means in reports.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Median returns the median of xs without modifying it.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	c := make([]float64, len(xs))
	copy(c, xs)
	sort.Float64s(c)
	n := len(c)
	if n%2 == 1 {
		return c[n/2]
	}
	return (c[n/2-1] + c[n/2]) / 2
}

// MinMax returns the minimum and maximum of xs.
func MinMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		return math.NaN(), math.NaN()
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// AlmostEqual reports whether a and b agree within absolute tolerance
// tol or relative tolerance tol (whichever is looser). Used pervasively
// by calibration tests.
func AlmostEqual(a, b, tol float64) bool {
	d := math.Abs(a - b)
	if d <= tol {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return d <= tol*scale
}
