package vmath

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); !AlmostEqual(m, 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", m)
	}
	if s := StdDev(xs); !AlmostEqual(s, 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", s)
	}
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(StdDev(nil)) {
		t.Error("empty input should be NaN")
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 100}); !AlmostEqual(g, 10, 1e-12) {
		t.Errorf("GeoMean = %v, want 10", g)
	}
	if !math.IsNaN(GeoMean([]float64{1, -1})) {
		t.Error("negative input should be NaN")
	}
	if !math.IsNaN(GeoMean(nil)) {
		t.Error("empty input should be NaN")
	}
}

func TestMedian(t *testing.T) {
	if m := Median([]float64{3, 1, 2}); m != 2 {
		t.Errorf("odd Median = %v, want 2", m)
	}
	if m := Median([]float64{4, 1, 3, 2}); m != 2.5 {
		t.Errorf("even Median = %v, want 2.5", m)
	}
	orig := []float64{9, 1, 5}
	Median(orig)
	if orig[0] != 9 || orig[1] != 1 || orig[2] != 5 {
		t.Error("Median mutated its input")
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 7, 0})
	if lo != -1 || hi != 7 {
		t.Errorf("MinMax = (%v, %v), want (-1, 7)", lo, hi)
	}
	lo, hi = MinMax([]float64{5})
	if lo != 5 || hi != 5 {
		t.Errorf("single MinMax = (%v, %v)", lo, hi)
	}
}

func TestAlmostEqual(t *testing.T) {
	if !AlmostEqual(1e9, 1e9+1, 1e-6) {
		t.Error("relative tolerance should accept 1e9 vs 1e9+1")
	}
	if AlmostEqual(1, 2, 1e-6) {
		t.Error("1 vs 2 should not be almost equal")
	}
	if !AlmostEqual(0, 1e-9, 1e-6) {
		t.Error("absolute tolerance should accept tiny values near zero")
	}
}

// Property: mean is within [min, max], and stddev is non-negative.
func TestStatsBoundsProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, math.Mod(v, 1e6))
			}
		}
		if len(xs) == 0 {
			return true
		}
		lo, hi := MinMax(xs)
		m := Mean(xs)
		if m < lo-1e-9 || m > hi+1e-9 {
			return false
		}
		return StdDev(xs) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
