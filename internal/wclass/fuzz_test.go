package wclass

import "testing"

// FuzzParseKey checks the ParseKey/Key round-trip invariant: any key
// ParseKey accepts must re-serialize to exactly the accepted input, and
// no input may panic. The α table persists categories by key, so a
// parser that accepted a near-miss would corrupt the table silently.
func FuzzParseKey(f *testing.F) {
	for _, c := range All() {
		f.Add(c.Key())
	}
	f.Add("")
	f.Add("quantum-cpuS")
	f.Add("mem-cpuS-gpuS ")
	f.Add("MEM-cpuS-gpuL")
	f.Add("mem-cpus-gpul")
	f.Fuzz(func(t *testing.T, key string) {
		c, err := ParseKey(key)
		if err != nil {
			return
		}
		if got := c.Key(); got != key {
			t.Fatalf("ParseKey(%q).Key() = %q: accepted a key that does not round-trip", key, got)
		}
	})
}
