// Package wclass defines the paper's eight-way workload classification
// that selects which power characterization function applies to a
// workload: memory- vs compute-bound × short vs long CPU execution ×
// short vs long GPU execution.
package wclass

import (
	"fmt"
	"time"
)

// ShortLongThreshold separates short- from long-running executions.
// The paper found 100 ms to work well on both of its platforms.
const ShortLongThreshold = 100 * time.Millisecond

// MemoryBoundThreshold is the L3-miss-per-load/store ratio above which
// a workload is classified memory-bound (paper §5).
const MemoryBoundThreshold = 0.33

// Category is one of the eight workload classes.
type Category struct {
	// Memory is true for memory-bound workloads.
	Memory bool
	// CPUShort is true when the workload's CPU-alone execution is
	// shorter than ShortLongThreshold; GPUShort likewise for the GPU.
	CPUShort, GPUShort bool
}

// NumCategories is the size of the classification space: 2³ = 8.
const NumCategories = 8

// keyTable holds the eight category keys, indexed by Category.Index().
// The strings are exactly what the historical fmt.Sprintf produced, so
// persisted characterizations and goldens keep loading; interning them
// makes Key allocation-free on the scheduler's hot path.
var keyTable = [NumCategories]string{
	"comp-cpuL-gpuL",
	"comp-cpuL-gpuS",
	"comp-cpuS-gpuL",
	"comp-cpuS-gpuS",
	"mem-cpuL-gpuL",
	"mem-cpuL-gpuS",
	"mem-cpuS-gpuL",
	"mem-cpuS-gpuS",
}

// Index returns the category's dense index in [0, NumCategories):
// Memory is the high bit, then CPUShort, then GPUShort — the same
// order All() enumerates.
func (c Category) Index() int {
	i := 0
	if c.Memory {
		i |= 4
	}
	if c.CPUShort {
		i |= 2
	}
	if c.GPUShort {
		i |= 1
	}
	return i
}

// FromIndex inverts Index. It reports ok=false for indices outside
// [0, NumCategories) — the validation recovery paths rely on when a
// category byte arrives from disk.
func FromIndex(i int) (Category, bool) {
	if i < 0 || i >= NumCategories {
		return Category{}, false
	}
	return Category{Memory: i&4 != 0, CPUShort: i&2 != 0, GPUShort: i&1 != 0}, true
}

// Key returns a stable identifier like "mem-cpuS-gpuL", used to index
// characterization curves. The returned string is interned: repeated
// calls never allocate.
func (c Category) Key() string { return keyTable[c.Index()] }

// String implements fmt.Stringer.
func (c Category) String() string { return c.Key() }

// All returns the eight categories in a stable order.
func All() []Category {
	var out []Category
	for _, mem := range []bool{false, true} {
		for _, cs := range []bool{false, true} {
			for _, gs := range []bool{false, true} {
				out = append(out, Category{Memory: mem, CPUShort: cs, GPUShort: gs})
			}
		}
	}
	return out
}

// Classify derives the category from profiling observations: the
// hardware-counter memory intensity and the estimated times to run the
// remaining iterations on each device alone.
func Classify(memIntensity float64, estCPUAlone, estGPUAlone time.Duration) Category {
	return Category{
		Memory:   memIntensity > MemoryBoundThreshold,
		CPUShort: estCPUAlone < ShortLongThreshold,
		GPUShort: estGPUAlone < ShortLongThreshold,
	}
}

// ParseKey inverts Key. It returns an error for unknown keys.
func ParseKey(key string) (Category, error) {
	for _, c := range All() {
		if c.Key() == key {
			return c, nil
		}
	}
	return Category{}, fmt.Errorf("wclass: unknown category key %q", key)
}
