package wclass

import (
	"testing"
	"time"
)

func TestAllHasEightDistinct(t *testing.T) {
	cats := All()
	if len(cats) != 8 {
		t.Fatalf("All() = %d categories, want 8", len(cats))
	}
	seen := map[string]bool{}
	for _, c := range cats {
		if seen[c.Key()] {
			t.Errorf("duplicate key %s", c.Key())
		}
		seen[c.Key()] = true
	}
}

func TestKeyFormat(t *testing.T) {
	c := Category{Memory: true, CPUShort: true, GPUShort: false}
	if c.Key() != "mem-cpuS-gpuL" {
		t.Errorf("Key = %q", c.Key())
	}
	c = Category{}
	if c.Key() != "comp-cpuL-gpuL" {
		t.Errorf("Key = %q", c.Key())
	}
	if c.String() != c.Key() {
		t.Error("String should equal Key")
	}
}

func TestClassify(t *testing.T) {
	c := Classify(0.5, 50*time.Millisecond, 2*time.Second)
	want := Category{Memory: true, CPUShort: true, GPUShort: false}
	if c != want {
		t.Errorf("Classify = %+v, want %+v", c, want)
	}
	// Exactly at the thresholds: not memory-bound, not short.
	c = Classify(MemoryBoundThreshold, ShortLongThreshold, ShortLongThreshold)
	if c.Memory || c.CPUShort || c.GPUShort {
		t.Errorf("boundary Classify = %+v, want all false", c)
	}
}

func TestParseKeyRoundTrip(t *testing.T) {
	for _, c := range All() {
		got, err := ParseKey(c.Key())
		if err != nil || got != c {
			t.Errorf("ParseKey(%q) = %+v, %v", c.Key(), got, err)
		}
	}
	if _, err := ParseKey("quantum-cpuS"); err == nil {
		t.Error("unknown key accepted")
	}
}
