package workloads

// Deeper algorithm-specific correctness tests, beyond the generic
// Run/Verify round trips in functional_test.go. These run in-package so
// they can set up targeted inputs.

import (
	"math"
	"testing"

	"github.com/hetsched/eas/internal/ws"
)

func exec() Executor { return PoolExecutor{Pool: ws.NewPool(4)} }

func TestBlackscholesPutCallBounds(t *testing.T) {
	b, err := NewFunctionalBlackscholes(2000, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Run(exec()); err != nil {
		t.Fatal(err)
	}
	// Deep in-the-money call converges to S - K·e^(-rT); deep
	// out-of-the-money converges to 0.
	itm := blackScholesCall(1000, 1, 1, 0.2, 0.03)
	if math.Abs(itm-(1000-math.Exp(-0.03))) > 0.01 {
		t.Errorf("deep ITM call = %v, want ≈%v", itm, 1000-math.Exp(-0.03))
	}
	otm := blackScholesCall(1, 1000, 1, 0.2, 0.03)
	if otm > 1e-9 {
		t.Errorf("deep OTM call = %v, want ≈0", otm)
	}
	// Monotonicity in spot: C(S+δ) ≥ C(S).
	if blackScholesCall(110, 100, 1, 0.3, 0.02) <= blackScholesCall(90, 100, 1, 0.3, 0.02) {
		t.Error("call price should increase with spot")
	}
}

func TestMatMulIdentity(t *testing.T) {
	m, err := NewFunctionalMatMul(32, 1)
	if err != nil {
		t.Fatal(err)
	}
	// B := I, so C must equal A.
	for i := 0; i < m.dim; i++ {
		for j := 0; j < m.dim; j++ {
			if i == j {
				m.b[i*m.dim+j] = 1
			} else {
				m.b[i*m.dim+j] = 0
			}
		}
	}
	if err := m.Run(exec()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < m.dim; i++ {
		for j := 0; j < m.dim; j++ {
			if got, want := m.At(i, j), m.a[i*m.dim+j]; math.Abs(float64(got-want)) > 1e-6 {
				t.Fatalf("A·I mismatch at (%d,%d): %v vs %v", i, j, got, want)
			}
		}
	}
}

func TestMandelbrotConjugateSymmetry(t *testing.T) {
	// Escape counts are invariant under complex conjugation:
	// escape(c) == escape(conj(c)).
	for _, c := range []struct{ cr, ci float64 }{
		{-0.7, 0.3}, {0.1, 0.65}, {-1.5, 0.01}, {0.25, 0.5}, {-0.1, 1.05},
	} {
		a := escape(c.cr, c.ci, 256)
		b := escape(c.cr, -c.ci, 256)
		if a != b {
			t.Errorf("conjugate symmetry broken at (%v,%v): %d vs %d", c.cr, c.ci, a, b)
		}
	}
	// Known membership: the period-2 bulb center (-1, 0) never escapes.
	if escape(-1, 0, 256) != 256 {
		t.Error("(-1,0) should be in the set")
	}
	if escape(2, 2, 256) > 2 {
		t.Error("(2,2) should escape immediately")
	}
}

func TestNBodyMomentumConservation(t *testing.T) {
	b, err := NewFunctionalNBody(64, 5, 9)
	if err != nil {
		t.Fatal(err)
	}
	momentum := func() (px, py, pz float64) {
		for i := range b.vx {
			px += b.mass[i] * b.vx[i]
			py += b.mass[i] * b.vy[i]
			pz += b.mass[i] * b.vz[i]
		}
		return px, py, pz
	}
	p0x, p0y, p0z := momentum()
	if err := b.Run(exec()); err != nil {
		t.Fatal(err)
	}
	p1x, p1y, p1z := momentum()
	// Pairwise forces are equal and opposite; with a shared softening
	// term momentum drift should be tiny relative to total speed scale.
	drift := math.Abs(p1x-p0x) + math.Abs(p1y-p0y) + math.Abs(p1z-p0z)
	if drift > 1e-6 {
		t.Errorf("momentum drift %v, want ≈0", drift)
	}
}

func TestBarnesHutTwoBodies(t *testing.T) {
	b, err := NewFunctionalBarnesHut(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Place the two bodies deterministically.
	b.px[0], b.py[0], b.mass[0] = 0, 0, 2
	b.px[1], b.py[1], b.mass[1] = 3, 4, 1
	if err := b.Run(exec()); err != nil {
		t.Fatal(err)
	}
	f0x, f0y := b.Forces(0)
	f1x, f1y := b.Forces(1)
	// Newton's third law.
	if math.Abs(f0x+f1x) > 1e-9 || math.Abs(f0y+f1y) > 1e-9 {
		t.Errorf("forces not equal/opposite: (%v,%v) vs (%v,%v)", f0x, f0y, f1x, f1y)
	}
	// Force on body 0 points toward body 1 (positive x and y).
	if f0x <= 0 || f0y <= 0 {
		t.Errorf("force direction wrong: (%v,%v)", f0x, f0y)
	}
	// Magnitude ≈ m0·m1/d² with d=5 (softening is negligible here).
	mag := math.Hypot(f0x, f0y)
	if math.Abs(mag-2.0/25) > 1e-3 {
		t.Errorf("force magnitude %v, want ≈0.08", mag)
	}
}

func TestCCGridIsSingleComponent(t *testing.T) {
	c, err := NewFunctionalCC(16, 16, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(exec()); err != nil {
		t.Fatal(err)
	}
	// Verify() checks labels against union-find; additionally, a small
	// grid with shortcuts is usually one component — every vertex
	// reachable from 0 must share its label.
	if err := c.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestSSSPDominatesBFSLowerBound(t *testing.T) {
	// Every edge weighs ≥ 0.8, so dist(v) ≥ 0.8 × (BFS hops to v).
	s, err := NewFunctionalSSSP(40, 30, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(exec()); err != nil {
		t.Fatal(err)
	}
	bfs := &FunctionalBFS{g: s.g, src: s.src}
	if err := bfs.Run(exec()); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < s.g.N; v += 17 {
		lvl := bfs.Levels()[v]
		if lvl < 0 {
			continue
		}
		if d := float64(s.Dist(v)); d < 0.8*float64(lvl)-1e-3 {
			t.Fatalf("vertex %d: dist %v below hop lower bound %v", v, d, 0.8*float64(lvl))
		}
	}
}

func TestSkipListLevelDistribution(t *testing.T) {
	// Tower heights should be geometric(1/2): mean ≈ 2, capped at 16.
	total := 0
	n := 100000
	for k := 0; k < n; k++ {
		l := randomLevel(int64(k)*7 + 3)
		if l < 1 || l > slMaxLevel {
			t.Fatalf("level %d out of range", l)
		}
		total += l
	}
	mean := float64(total) / float64(n)
	if mean < 1.8 || mean > 2.2 {
		t.Errorf("mean tower height %v, want ≈2", mean)
	}
}

func TestFaceDetectNoFacesNoNoise(t *testing.T) {
	// An image with zero planted faces and a dim background should
	// yield no detections (stage 0 requires bright windows).
	f, err := NewFunctionalFaceDetect(200, 160, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Run(exec()); err != nil {
		t.Fatal(err)
	}
	if n := len(f.Detections()); n != 0 {
		t.Errorf("%d detections on a faceless image", n)
	}
}

func TestSeismicWaveReachesNeighbors(t *testing.T) {
	s, err := NewFunctionalSeismic(32, 32, 4, 11)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(exec()); err != nil {
		t.Fatal(err)
	}
	// After a few frames, cells near the source carry energy.
	field := s.Field()
	idx := s.sourceIdx
	near := math.Abs(float64(field[idx-1])) + math.Abs(float64(field[idx+1])) +
		math.Abs(float64(field[idx-32])) + math.Abs(float64(field[idx+32]))
	if near == 0 {
		t.Error("wave did not reach the source's neighbors")
	}
}

func TestRayTracerCenterHitsScene(t *testing.T) {
	rt, err := NewFunctionalRayTracer(64, 64, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	// One huge sphere dead ahead: the center pixel must not be
	// background.
	rt.spheres[0] = rtSphere{x: 0, y: 0, z: 20, r: 8, mat: 1}
	if err := rt.Run(exec()); err != nil {
		t.Fatal(err)
	}
	if rt.Pixel(32, 32) <= 0.051 {
		t.Errorf("center pixel %v should hit the sphere", rt.Pixel(32, 32))
	}
	// A corner ray misses it.
	if rt.Pixel(0, 0) > 0.0501 {
		t.Errorf("corner pixel %v should be background", rt.Pixel(0, 0))
	}
}
