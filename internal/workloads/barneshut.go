package workloads

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/hetsched/eas/internal/device"
	"github.com/hetsched/eas/internal/engine"
	"github.com/hetsched/eas/internal/wclass"
)

// bhCost is the per-body cost of a Barnes-Hut force pass: a pointer-
// chasing quadtree walk with scattered node reads.
func bhCost() device.CostProfile {
	return device.CostProfile{
		FLOPs:        2500,
		MemOps:       140,
		L3MissRatio:  0.4,
		Instructions: 4500,
		Divergence:   0.65,
	}
}

// BarnesHut is the BH workload: one force-computation kernel over 1M
// bodies (desktop input; the paper does not run BH on the tablet).
func BarnesHut() Workload {
	return Workload{
		Name:             "BarnesHut",
		Abbrev:           "BH",
		Irregular:        true,
		Paper:            wclass.Category{Memory: true, CPUShort: false, GPUShort: false},
		PaperInvocations: 1,
		Inputs: map[string]string{
			"desktop": "1M bodies, 1 step",
		},
		Schedule: func(platformName string, seed int64) ([]Invocation, error) {
			if platformName != "desktop" {
				return nil, errUnsupported("BH", platformName)
			}
			rng := rand.New(rand.NewSource(seed))
			cpuF, gpuF := noise(rng, 0.05)
			return []Invocation{{
				Kernel: engine.Kernel{
					Name:           "BH.forces",
					Cost:           bhCost(),
					CPUSpeedFactor: cpuF,
					GPUSpeedFactor: gpuF,
				},
				N: 1_000_000,
			}}, nil
		},
	}
}

// FunctionalBarnesHut computes one gravity step over 2-D bodies with a
// quadtree and the Barnes-Hut opening criterion.
type FunctionalBarnesHut struct {
	theta      float64
	px, py     []float64
	mass       []float64
	fx, fy     []float64
	nodes      []bhNode
	root       int32
	minX, maxX float64
	minY, maxY float64
}

type bhNode struct {
	// children are quadrant node indices, -1 for empty.
	children [4]int32
	// body is the index of the single body in a leaf, -1 for internal.
	body int32
	// cx, cy, m are the center of mass and total mass.
	cx, cy, m float64
	// x, y, half describe the node's square region.
	x, y, half float64
}

// NewFunctionalBarnesHut creates n randomly placed bodies.
func NewFunctionalBarnesHut(n int, seed int64) (*FunctionalBarnesHut, error) {
	if n < 2 {
		return nil, fmt.Errorf("barneshut: need at least 2 bodies, got %d", n)
	}
	rng := rand.New(rand.NewSource(seed))
	b := &FunctionalBarnesHut{
		theta: 0.5,
		px:    make([]float64, n),
		py:    make([]float64, n),
		mass:  make([]float64, n),
		fx:    make([]float64, n),
		fy:    make([]float64, n),
	}
	for i := 0; i < n; i++ {
		b.px[i] = rng.Float64() * 100
		b.py[i] = rng.Float64() * 100
		b.mass[i] = 0.5 + rng.Float64()
	}
	return b, nil
}

// Name implements Functional.
func (b *FunctionalBarnesHut) Name() string { return "BH" }

// Forces returns the computed force on body i (valid after Run).
func (b *FunctionalBarnesHut) Forces(i int) (fx, fy float64) { return b.fx[i], b.fy[i] }

func (b *FunctionalBarnesHut) newNode(x, y, half float64) int32 {
	b.nodes = append(b.nodes, bhNode{
		children: [4]int32{-1, -1, -1, -1},
		body:     -1,
		x:        x, y: y, half: half,
	})
	return int32(len(b.nodes) - 1)
}

func (b *FunctionalBarnesHut) quadrant(n *bhNode, x, y float64) int {
	q := 0
	if x >= n.x {
		q |= 1
	}
	if y >= n.y {
		q |= 2
	}
	return q
}

func (b *FunctionalBarnesHut) insert(node int32, body int32) {
	n := &b.nodes[node]
	if n.body < 0 && n.children == [4]int32{-1, -1, -1, -1} {
		n.body = body
		return
	}
	if n.body >= 0 {
		// Split the leaf: push the resident body down.
		resident := n.body
		n.body = -1
		b.pushDown(node, resident)
		n = &b.nodes[node] // pushDown may grow b.nodes
	}
	b.pushDown(node, body)
}

func (b *FunctionalBarnesHut) pushDown(node int32, body int32) {
	n := &b.nodes[node]
	q := b.quadrant(n, b.px[body], b.py[body])
	child := n.children[q]
	if child < 0 {
		h := n.half / 2
		cx := n.x - h
		if q&1 != 0 {
			cx = n.x + h
		}
		cy := n.y - h
		if q&2 != 0 {
			cy = n.y + h
		}
		child = b.newNode(cx, cy, h)
		b.nodes[node].children[q] = child
	}
	b.insert(child, body)
}

func (b *FunctionalBarnesHut) summarize(node int32) (cx, cy, m float64) {
	n := &b.nodes[node]
	if n.body >= 0 {
		n.cx, n.cy, n.m = b.px[n.body], b.py[n.body], b.mass[n.body]
		return n.cx, n.cy, n.m
	}
	var sx, sy, sm float64
	for _, c := range n.children {
		if c < 0 {
			continue
		}
		ccx, ccy, cm := b.summarize(c)
		sx += ccx * cm
		sy += ccy * cm
		sm += cm
	}
	if sm > 0 {
		n.cx, n.cy, n.m = sx/sm, sy/sm, sm
	}
	return n.cx, n.cy, n.m
}

func (b *FunctionalBarnesHut) buildTree() {
	b.nodes = b.nodes[:0]
	b.minX, b.maxX = b.px[0], b.px[0]
	b.minY, b.maxY = b.py[0], b.py[0]
	for i := range b.px {
		b.minX = math.Min(b.minX, b.px[i])
		b.maxX = math.Max(b.maxX, b.px[i])
		b.minY = math.Min(b.minY, b.py[i])
		b.maxY = math.Max(b.maxY, b.py[i])
	}
	half := math.Max(b.maxX-b.minX, b.maxY-b.minY)/2 + 1e-9
	b.root = b.newNode((b.minX+b.maxX)/2, (b.minY+b.maxY)/2, half)
	for i := range b.px {
		b.insert(b.root, int32(i))
	}
	b.summarize(b.root)
}

// force accumulates the Barnes-Hut force on body i from the subtree.
func (b *FunctionalBarnesHut) force(i int, node int32) (fx, fy float64) {
	n := &b.nodes[node]
	if n.m == 0 {
		return 0, 0
	}
	dx := n.cx - b.px[i]
	dy := n.cy - b.py[i]
	d2 := dx*dx + dy*dy + 1e-6
	d := math.Sqrt(d2)
	isLeaf := n.body >= 0
	if isLeaf && n.body == int32(i) {
		return 0, 0
	}
	if isLeaf || (2*n.half)/d < b.theta {
		f := b.mass[i] * n.m / (d2 * d)
		return f * dx, f * dy
	}
	for _, c := range n.children {
		if c >= 0 {
			cfx, cfy := b.force(i, c)
			fx += cfx
			fy += cfy
		}
	}
	return fx, fy
}

// Run implements Functional: serial tree build, parallel force pass
// (the kernel the paper offloads).
func (b *FunctionalBarnesHut) Run(ex Executor) error {
	b.buildTree()
	return ex.ParallelFor(len(b.px), func(i int) {
		b.fx[i], b.fy[i] = b.force(i, b.root)
	})
}

// Verify implements Functional: sampled bodies must agree with the
// direct O(n²) force within the Barnes-Hut approximation tolerance.
func (b *FunctionalBarnesHut) Verify() error {
	if b.nodes == nil {
		return fmt.Errorf("barneshut: Verify called before Run")
	}
	n := len(b.px)
	step := n / 16
	if step == 0 {
		step = 1
	}
	for i := 0; i < n; i += step {
		var ex, ey float64
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			dx := b.px[j] - b.px[i]
			dy := b.py[j] - b.py[i]
			d2 := dx*dx + dy*dy + 1e-6
			d := math.Sqrt(d2)
			f := b.mass[i] * b.mass[j] / (d2 * d)
			ex += f * dx
			ey += f * dy
		}
		mag := math.Hypot(ex, ey)
		diff := math.Hypot(b.fx[i]-ex, b.fy[i]-ey)
		if diff > 0.08*mag+1e-6 {
			return fmt.Errorf("barneshut: body %d force error %v exceeds 8%% of %v", i, diff, mag)
		}
	}
	return nil
}
