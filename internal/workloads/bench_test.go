package workloads

import (
	"testing"

	"github.com/hetsched/eas/internal/ws"
)

// Host-side throughput of the functional implementations, exercised
// through the real work-stealing pool.

func benchFunctional(b *testing.B, build func() (Functional, error)) {
	b.Helper()
	ex := PoolExecutor{Pool: ws.NewPool(0)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		f, err := build()
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if err := f.Run(ex); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFunctionalBFS(b *testing.B) {
	benchFunctional(b, func() (Functional, error) { return NewFunctionalBFS(300, 200, 1) })
}

func BenchmarkFunctionalCC(b *testing.B) {
	benchFunctional(b, func() (Functional, error) { return NewFunctionalCC(120, 120, 1) })
}

func BenchmarkFunctionalSSSP(b *testing.B) {
	benchFunctional(b, func() (Functional, error) { return NewFunctionalSSSP(120, 100, 1) })
}

func BenchmarkFunctionalBarnesHut(b *testing.B) {
	benchFunctional(b, func() (Functional, error) { return NewFunctionalBarnesHut(4000, 1) })
}

func BenchmarkFunctionalMandelbrot(b *testing.B) {
	benchFunctional(b, func() (Functional, error) { return NewFunctionalMandelbrot(512, 384) })
}

func BenchmarkFunctionalSkipList(b *testing.B) {
	benchFunctional(b, func() (Functional, error) { return NewFunctionalSkipList(100000, 1) })
}

func BenchmarkFunctionalBlackscholes(b *testing.B) {
	benchFunctional(b, func() (Functional, error) { return NewFunctionalBlackscholes(200000, 1) })
}

func BenchmarkFunctionalMatMul(b *testing.B) {
	benchFunctional(b, func() (Functional, error) { return NewFunctionalMatMul(256, 1) })
}

func BenchmarkFunctionalNBody(b *testing.B) {
	benchFunctional(b, func() (Functional, error) { return NewFunctionalNBody(512, 2, 1) })
}

func BenchmarkFunctionalRayTracer(b *testing.B) {
	benchFunctional(b, func() (Functional, error) { return NewFunctionalRayTracer(256, 256, 64, 1) })
}

func BenchmarkFunctionalSeismic(b *testing.B) {
	benchFunctional(b, func() (Functional, error) { return NewFunctionalSeismic(256, 192, 25, 1) })
}

func BenchmarkFunctionalFaceDetect(b *testing.B) {
	benchFunctional(b, func() (Functional, error) { return NewFunctionalFaceDetect(320, 240, 3, 1) })
}
