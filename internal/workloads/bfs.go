package workloads

import (
	"fmt"
	"math/rand"
	"sync/atomic"

	"github.com/hetsched/eas/internal/device"
	"github.com/hetsched/eas/internal/engine"
	"github.com/hetsched/eas/internal/graphgen"
	"github.com/hetsched/eas/internal/wclass"
)

// bfsCost is the per-item (per frontier vertex) cost of the BFS kernel:
// a neighbor scan with random-access marking — memory-bound and highly
// divergent.
func bfsCost() device.CostProfile {
	return device.CostProfile{
		FLOPs:        0,
		MemOps:       12,
		L3MissRatio:  0.5,
		Instructions: 60,
		Divergence:   0.85,
	}
}

// BFS is the breadth-first search workload: W-USA-scale road network,
// one kernel invocation per BFS level (1748 on the desktop input).
func BFS() Workload {
	return Workload{
		Name:             "Breadth first search",
		Abbrev:           "BFS",
		Irregular:        true,
		Paper:            wclass.Category{Memory: true, CPUShort: true, GPUShort: true},
		PaperInvocations: 1748,
		Inputs: map[string]string{
			"desktop": "synthetic road network, |V|=6.2M (W-USA-like)",
		},
		Schedule: func(platformName string, seed int64) ([]Invocation, error) {
			if platformName != "desktop" {
				return nil, errUnsupported("BFS", platformName)
			}
			rng := rand.New(rand.NewSource(seed))
			frontiers := bellFrontiers(1748, 6_200_000)
			invs := make([]Invocation, len(frontiers))
			for k, n := range frontiers {
				cpuF, gpuF := noise(rng, 0.06)
				invs[k] = Invocation{
					Kernel: engine.Kernel{
						Name:           "BFS.expand",
						Cost:           bfsCost(),
						CPUSpeedFactor: cpuF,
						GPUSpeedFactor: gpuF,
					},
					N: n,
				}
			}
			return invs, nil
		},
	}
}

// FunctionalBFS is a really-computing level-synchronous parallel BFS on
// a synthetic road network.
type FunctionalBFS struct {
	g      *graphgen.Graph
	src    int
	levels []int32

	frontier, next []int32
	nextLen        atomic.Int64
}

// NewFunctionalBFS builds a BFS instance over a w×h road network.
func NewFunctionalBFS(w, h int, seed int64) (*FunctionalBFS, error) {
	g, err := graphgen.RoadNetwork(w, h, 0.001, seed)
	if err != nil {
		return nil, err
	}
	return &FunctionalBFS{g: g, src: 0}, nil
}

// Name implements Functional.
func (b *FunctionalBFS) Name() string { return "BFS" }

// Levels returns the computed level array (valid after Run).
func (b *FunctionalBFS) Levels() []int32 { return b.levels }

// Run implements Functional: one ParallelFor per BFS level.
func (b *FunctionalBFS) Run(ex Executor) error {
	n := b.g.N
	b.levels = make([]int32, n)
	for i := range b.levels {
		b.levels[i] = -1
	}
	b.levels[b.src] = 0
	b.frontier = append(b.frontier[:0], int32(b.src))
	b.next = make([]int32, n)

	depth := int32(0)
	for len(b.frontier) > 0 {
		b.nextLen.Store(0)
		frontier := b.frontier
		g := b.g
		levels := b.levels
		err := ex.ParallelFor(len(frontier), func(i int) {
			v := frontier[i]
			for _, nb := range g.Neighbors(int(v)) {
				// Claim unvisited neighbors with a CAS so each vertex
				// joins exactly one frontier.
				if atomic.CompareAndSwapInt32(&levels[nb], -1, depth+1) {
					slot := b.nextLen.Add(1) - 1
					b.next[slot] = nb
				}
			}
		})
		if err != nil {
			return err
		}
		newLen := int(b.nextLen.Load())
		b.frontier = append(b.frontier[:0], b.next[:newLen]...)
		depth++
	}
	return nil
}

// Verify implements Functional: the parallel result must match a serial
// reference BFS.
func (b *FunctionalBFS) Verify() error {
	if b.levels == nil {
		return fmt.Errorf("bfs: Verify called before Run")
	}
	want, _ := graphgen.BFSLevels(b.g, b.src)
	for v := range want {
		if want[v] != b.levels[v] {
			return fmt.Errorf("bfs: vertex %d has level %d, want %d", v, b.levels[v], want[v])
		}
	}
	return nil
}
