package workloads

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/hetsched/eas/internal/device"
	"github.com/hetsched/eas/internal/engine"
	"github.com/hetsched/eas/internal/wclass"
)

// bsCost is the per-option cost: a fixed closed-form evaluation with no
// divergence and excellent locality.
func bsCost() device.CostProfile {
	return device.CostProfile{
		FLOPs:        250,
		MemOps:       8,
		L3MissRatio:  0.05,
		Instructions: 60,
		Divergence:   0,
	}
}

// Blackscholes is the BS workload (from PARSEC): 2000 pricing kernel
// invocations over 64K options (desktop) or 2.6M options (tablet).
func Blackscholes() Workload {
	sched := func(platformName string, seed int64) ([]Invocation, error) {
		var n int
		switch platformName {
		case "desktop":
			n = 64 * 1024
		case "tablet":
			n = 2_621_440
		default:
			return nil, errUnsupported("BS", platformName)
		}
		rng := rand.New(rand.NewSource(seed))
		invs := make([]Invocation, 2000)
		for k := range invs {
			cpuF, gpuF := noise(rng, 0.01)
			invs[k] = Invocation{
				Kernel: engine.Kernel{
					Name:           "BS.price",
					Cost:           bsCost(),
					CPUSpeedFactor: cpuF,
					GPUSpeedFactor: gpuF,
				},
				N: n,
			}
		}
		return invs, nil
	}
	return Workload{
		Name:             "Blackscholes",
		Abbrev:           "BS",
		Irregular:        false,
		Paper:            wclass.Category{Memory: false, CPUShort: true, GPUShort: true},
		PaperInvocations: 2000,
		Inputs: map[string]string{
			"desktop": "64K options",
			"tablet":  "2621440 options",
		},
		Schedule: sched,
	}
}

// FunctionalBlackscholes prices a deterministic batch of European
// options with the closed-form Black-Scholes formula.
type FunctionalBlackscholes struct {
	spot, strike, t, vol, rate []float64
	call                       []float64
}

// NewFunctionalBlackscholes builds n options.
func NewFunctionalBlackscholes(n int, seed int64) (*FunctionalBlackscholes, error) {
	if n < 1 {
		return nil, fmt.Errorf("blackscholes: need at least one option")
	}
	rng := rand.New(rand.NewSource(seed))
	b := &FunctionalBlackscholes{
		spot:   make([]float64, n),
		strike: make([]float64, n),
		t:      make([]float64, n),
		vol:    make([]float64, n),
		rate:   make([]float64, n),
		call:   make([]float64, n),
	}
	for i := 0; i < n; i++ {
		b.spot[i] = 50 + 100*rng.Float64()
		b.strike[i] = 50 + 100*rng.Float64()
		b.t[i] = 0.25 + 2*rng.Float64()
		b.vol[i] = 0.1 + 0.5*rng.Float64()
		b.rate[i] = 0.01 + 0.05*rng.Float64()
	}
	return b, nil
}

// Name implements Functional.
func (b *FunctionalBlackscholes) Name() string { return "BS" }

// Call returns the computed call price of option i (valid after Run).
func (b *FunctionalBlackscholes) Call(i int) float64 { return b.call[i] }

// cnd is the cumulative standard normal distribution.
func cnd(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

func blackScholesCall(s, k, t, v, r float64) float64 {
	d1 := (math.Log(s/k) + (r+v*v/2)*t) / (v * math.Sqrt(t))
	d2 := d1 - v*math.Sqrt(t)
	return s*cnd(d1) - k*math.Exp(-r*t)*cnd(d2)
}

// Run implements Functional.
func (b *FunctionalBlackscholes) Run(ex Executor) error {
	return ex.ParallelFor(len(b.call), func(i int) {
		b.call[i] = blackScholesCall(b.spot[i], b.strike[i], b.t[i], b.vol[i], b.rate[i])
	})
}

// Verify implements Functional: prices must obey arbitrage bounds and
// match a serial recomputation on a sample.
func (b *FunctionalBlackscholes) Verify() error {
	if b.call == nil {
		return fmt.Errorf("blackscholes: Verify called before Run")
	}
	step := len(b.call)/500 + 1
	for i := 0; i < len(b.call); i += step {
		want := blackScholesCall(b.spot[i], b.strike[i], b.t[i], b.vol[i], b.rate[i])
		if math.Abs(b.call[i]-want) > 1e-12 {
			return fmt.Errorf("blackscholes: option %d price %v, want %v", i, b.call[i], want)
		}
		// No-arbitrage: S - K·e^(-rT) ≤ C ≤ S.
		lower := b.spot[i] - b.strike[i]*math.Exp(-b.rate[i]*b.t[i])
		if b.call[i] < math.Max(lower, 0)-1e-9 || b.call[i] > b.spot[i]+1e-9 {
			return fmt.Errorf("blackscholes: option %d price %v violates arbitrage bounds", i, b.call[i])
		}
	}
	return nil
}
