package workloads

import (
	"fmt"
	"math/rand"
	"sync/atomic"

	"github.com/hetsched/eas/internal/device"
	"github.com/hetsched/eas/internal/engine"
	"github.com/hetsched/eas/internal/graphgen"
	"github.com/hetsched/eas/internal/wclass"
)

// ccCost is the per-active-vertex cost of a label-propagation sweep.
// Divergence grows over the run: early sweeps touch almost every
// vertex in lockstep, late sweeps chase scattered stragglers. This
// drift is why the paper observes EAS mispredicting CC (it profiles
// the GPU-friendly head of the run and picks α=1.0 where the Oracle,
// which sees the whole run, picks 0.9).
func ccCost(progress float64) device.CostProfile {
	return device.CostProfile{
		FLOPs:        0,
		MemOps:       14,
		L3MissRatio:  0.55,
		Instructions: 70,
		Divergence:   0.7 + 0.25*progress,
	}
}

// ConnectedComponents is the CC workload: label propagation over the
// road network, 2147 kernel invocations on the desktop input.
func ConnectedComponents() Workload {
	return Workload{
		Name:             "Connected Component",
		Abbrev:           "CC",
		Irregular:        true,
		Paper:            wclass.Category{Memory: true, CPUShort: true, GPUShort: true},
		PaperInvocations: 2147,
		Inputs: map[string]string{
			"desktop": "synthetic road network, |V|=6.2M (W-USA-like)",
		},
		Schedule: func(platformName string, seed int64) ([]Invocation, error) {
			if platformName != "desktop" {
				return nil, errUnsupported("CC", platformName)
			}
			rng := rand.New(rand.NewSource(seed))
			const invocations = 2147
			sizes := decayingWorklist(invocations, 6_200_000, 0.55, 1200)
			invs := make([]Invocation, len(sizes))
			for k, n := range sizes {
				progress := float64(k) / float64(invocations)
				cpuF, gpuF := noise(rng, 0.07)
				// The GPU's relative efficiency on this workload
				// declines as the active set fragments.
				gpuF *= 1 - 0.12*progress
				invs[k] = Invocation{
					Kernel: engine.Kernel{
						Name:           "CC.propagate",
						Cost:           ccCost(progress),
						CPUSpeedFactor: cpuF,
						GPUSpeedFactor: gpuF,
					},
					N: n,
				}
			}
			return invs, nil
		},
	}
}

// FunctionalCC is a really-computing parallel connected-components via
// min-label propagation.
type FunctionalCC struct {
	g       *graphgen.Graph
	labels  []int32
	changed atomic.Bool
}

// NewFunctionalCC builds a CC instance over a w×h road network.
func NewFunctionalCC(w, h int, seed int64) (*FunctionalCC, error) {
	g, err := graphgen.RoadNetwork(w, h, 0.0005, seed)
	if err != nil {
		return nil, err
	}
	return &FunctionalCC{g: g}, nil
}

// Name implements Functional.
func (c *FunctionalCC) Name() string { return "CC" }

// Labels returns the component label per vertex (valid after Run).
func (c *FunctionalCC) Labels() []int32 { return c.labels }

// Run implements Functional: repeated full-graph min-label sweeps
// until a fixed point.
func (c *FunctionalCC) Run(ex Executor) error {
	n := c.g.N
	c.labels = make([]int32, n)
	for i := range c.labels {
		c.labels[i] = int32(i)
	}
	for {
		c.changed.Store(false)
		labels := c.labels
		g := c.g
		err := ex.ParallelFor(n, func(v int) {
			best := atomic.LoadInt32(&labels[v])
			for _, nb := range g.Neighbors(v) {
				if l := atomic.LoadInt32(&labels[nb]); l < best {
					best = l
				}
			}
			// Monotone atomic-min keeps concurrent sweeps convergent.
			for {
				cur := atomic.LoadInt32(&labels[v])
				if best >= cur {
					break
				}
				if atomic.CompareAndSwapInt32(&labels[v], cur, best) {
					c.changed.Store(true)
					break
				}
			}
		})
		if err != nil {
			return err
		}
		if !c.changed.Load() {
			return nil
		}
	}
}

// Verify implements Functional: labels must match the components a
// serial union-find computes.
func (c *FunctionalCC) Verify() error {
	if c.labels == nil {
		return fmt.Errorf("cc: Verify called before Run")
	}
	// Serial union-find reference.
	parent := make([]int32, c.g.N)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for v := 0; v < c.g.N; v++ {
		for _, nb := range c.g.Neighbors(v) {
			ra, rb := find(int32(v)), find(nb)
			if ra != rb {
				parent[ra] = rb
			}
		}
	}
	// Two vertices share a component iff they share a label.
	repLabel := map[int32]int32{}
	for v := 0; v < c.g.N; v++ {
		root := find(int32(v))
		if want, ok := repLabel[root]; ok {
			if c.labels[v] != want {
				return fmt.Errorf("cc: vertex %d label %d, want %d (component %d)", v, c.labels[v], want, root)
			}
		} else {
			repLabel[root] = c.labels[v]
		}
	}
	return nil
}
