package workloads

import (
	"fmt"
	"math/rand"

	"github.com/hetsched/eas/internal/device"
	"github.com/hetsched/eas/internal/engine"
	"github.com/hetsched/eas/internal/wclass"
)

// fdCost is the per-window cost of one cascade stage: feature sums via
// an integral image with early-exit control flow. The cascade's
// rejection branches are fully input-dependent, which is why GPU
// execution suffers on FD and the paper's EAS ends up choosing 100% CPU
// execution under the energy metric.
func fdCost() device.CostProfile {
	return device.CostProfile{
		FLOPs:        800,
		MemOps:       60,
		L3MissRatio:  0.1,
		Instructions: 700,
		Divergence:   1.0,
	}
}

// FaceDetect is the FD workload: a detection cascade over a
// 3000×2171 photograph (the paper uses the Solvay-1927 group photo; we
// substitute a synthetic image with planted faces).
func FaceDetect() Workload {
	return Workload{
		Name:             "Face Detect",
		Abbrev:           "FD",
		Irregular:        true,
		Paper:            wclass.Category{Memory: false, CPUShort: true, GPUShort: true},
		PaperInvocations: 132,
		Inputs: map[string]string{
			"desktop": "3000x2171 synthetic group photo (Solvay-1927-like)",
		},
		Schedule: func(platformName string, seed int64) ([]Invocation, error) {
			if platformName != "desktop" {
				return nil, errUnsupported("FD", platformName)
			}
			rng := rand.New(rand.NewSource(seed))
			// 132 invocations: scales × cascade stages; each stage
			// processes the survivors of the previous one.
			sizes := geometricStages(132, 1_500_000, 0.88)
			invs := make([]Invocation, len(sizes))
			for k, n := range sizes {
				cpuF, gpuF := noise(rng, 0.08)
				invs[k] = Invocation{
					Kernel: engine.Kernel{
						Name:           "FD.stage",
						Cost:           fdCost(),
						CPUSpeedFactor: cpuF,
						GPUSpeedFactor: gpuF,
					},
					N: n,
				}
			}
			return invs, nil
		},
	}
}

// FunctionalFaceDetect runs a three-stage brightness cascade over all
// windows of a synthetic image with planted bright square "faces".
type FunctionalFaceDetect struct {
	w, h     int
	win      int
	img      []uint8
	integral []int64
	planted  [][2]int

	survivors []int32 // window indices surviving all stages
	flags     []int32 // per-window survival marks, reused per stage
}

// NewFunctionalFaceDetect builds a w×h image with nFaces planted faces.
func NewFunctionalFaceDetect(w, h, nFaces int, seed int64) (*FunctionalFaceDetect, error) {
	const win = 24
	if w < 4*win || h < 4*win {
		return nil, fmt.Errorf("facedetect: image %dx%d too small for %d-pixel windows", w, h, win)
	}
	rng := rand.New(rand.NewSource(seed))
	f := &FunctionalFaceDetect{w: w, h: h, win: win, img: make([]uint8, w*h)}
	// Dim noisy background.
	for i := range f.img {
		f.img[i] = uint8(rng.Intn(60))
	}
	// Planted faces: bright squares with darker "eyes" band, aligned to
	// window positions so detection is exact.
	for i := 0; i < nFaces; i++ {
		x := rng.Intn((w-2*win)/win) * win
		y := rng.Intn((h-2*win)/win) * win
		f.planted = append(f.planted, [2]int{x, y})
		for dy := 0; dy < win; dy++ {
			for dx := 0; dx < win; dx++ {
				v := uint8(200 + rng.Intn(40))
				if dy >= win/4 && dy < win/2 {
					v = uint8(100 + rng.Intn(20)) // eye band
				}
				f.img[(y+dy)*w+x+dx] = v
			}
		}
	}
	f.buildIntegral()
	return f, nil
}

func (f *FunctionalFaceDetect) buildIntegral() {
	w, h := f.w, f.h
	f.integral = make([]int64, (w+1)*(h+1))
	for y := 1; y <= h; y++ {
		var rowSum int64
		for x := 1; x <= w; x++ {
			rowSum += int64(f.img[(y-1)*w+x-1])
			f.integral[y*(w+1)+x] = f.integral[(y-1)*(w+1)+x] + rowSum
		}
	}
}

// rectSum returns the pixel sum over [x,x+rw)×[y,y+rh).
func (f *FunctionalFaceDetect) rectSum(x, y, rw, rh int) int64 {
	w1 := f.w + 1
	return f.integral[(y+rh)*w1+x+rw] - f.integral[y*w1+x+rw] -
		f.integral[(y+rh)*w1+x] + f.integral[y*w1+x]
}

// stage evaluates cascade stage s on the window at (x, y).
func (f *FunctionalFaceDetect) stage(s, x, y int) bool {
	win := int64(f.win)
	area := win * win
	switch s {
	case 0: // overall brightness
		return f.rectSum(x, y, f.win, f.win) > 150*area
	case 1: // eye band darker than the whole window
		band := f.rectSum(x, y+f.win/4, f.win, f.win/4)
		whole := f.rectSum(x, y, f.win, f.win)
		return band*4 < whole
	default: // lower half brighter than the eye band
		lower := f.rectSum(x, y+f.win/2, f.win, f.win/2)
		band := f.rectSum(x, y+f.win/4, f.win, f.win/4)
		return lower > 2*band-band/2
	}
}

// Name implements Functional.
func (f *FunctionalFaceDetect) Name() string { return "FD" }

// Detections returns the surviving window indices (valid after Run).
func (f *FunctionalFaceDetect) Detections() []int32 { return f.survivors }

// Run implements Functional: one ParallelFor per cascade stage over the
// surviving windows.
func (f *FunctionalFaceDetect) Run(ex Executor) error {
	gw := f.w - f.win + 1
	gh := f.h - f.win + 1
	// Stage 0 scans every window.
	current := make([]int32, 0, gw*gh/64)
	all := int32(gw * gh)
	f.flags = make([]int32, gw*gh)
	err := ex.ParallelFor(int(all), func(i int) {
		x, y := i%gw, i/gw
		if f.stage(0, x, y) {
			f.flags[i] = 1
		}
	})
	if err != nil {
		return err
	}
	for i := int32(0); i < all; i++ {
		if f.flags[i] == 1 {
			current = append(current, i)
		}
	}
	// Later stages scan survivors only.
	for s := 1; s <= 2; s++ {
		for i := range f.flags {
			f.flags[i] = 0
		}
		windows := current
		err := ex.ParallelFor(len(windows), func(i int) {
			idx := windows[i]
			x, y := int(idx)%gw, int(idx)/gw
			if f.stage(s, x, y) {
				f.flags[idx] = 1
			}
		})
		if err != nil {
			return err
		}
		next := current[:0]
		for _, idx := range windows {
			if f.flags[idx] == 1 {
				next = append(next, idx)
			}
		}
		current = next
	}
	f.survivors = current
	return nil
}

// Verify implements Functional: every planted face must be among the
// detections, and the detections must match a serial cascade.
func (f *FunctionalFaceDetect) Verify() error {
	if f.flags == nil {
		return fmt.Errorf("facedetect: Verify called before Run")
	}
	gw := f.w - f.win + 1
	detected := map[int32]bool{}
	for _, idx := range f.survivors {
		detected[idx] = true
	}
	for _, p := range f.planted {
		idx := int32(p[1]*gw + p[0])
		if !detected[idx] {
			return fmt.Errorf("facedetect: planted face at (%d,%d) not detected", p[0], p[1])
		}
	}
	// Serial reference over all windows.
	gh := f.h - f.win + 1
	serial := 0
	for y := 0; y < gh; y++ {
		for x := 0; x < gw; x++ {
			if f.stage(0, x, y) && f.stage(1, x, y) && f.stage(2, x, y) {
				serial++
			}
		}
	}
	if serial != len(f.survivors) {
		return fmt.Errorf("facedetect: %d detections, serial reference finds %d", len(f.survivors), serial)
	}
	return nil
}
