package workloads

import (
	"testing"

	"github.com/hetsched/eas/internal/ws"
)

// runFunctional executes a functional workload on a real work-stealing
// pool and verifies its results.
func runFunctional(t *testing.T, f Functional) {
	t.Helper()
	ex := PoolExecutor{Pool: ws.NewPool(4)}
	if err := f.Run(ex); err != nil {
		t.Fatalf("%s: Run: %v", f.Name(), err)
	}
	if err := f.Verify(); err != nil {
		t.Fatalf("%s: Verify: %v", f.Name(), err)
	}
}

func TestFunctionalBFS(t *testing.T) {
	b, err := NewFunctionalBFS(80, 60, 11)
	if err != nil {
		t.Fatal(err)
	}
	runFunctional(t, b)
	if b.Levels()[0] != 0 {
		t.Error("source level wrong")
	}
}

func TestFunctionalCC(t *testing.T) {
	c, err := NewFunctionalCC(40, 40, 12)
	if err != nil {
		t.Fatal(err)
	}
	runFunctional(t, c)
}

func TestFunctionalSSSP(t *testing.T) {
	s, err := NewFunctionalSSSP(50, 40, 13)
	if err != nil {
		t.Fatal(err)
	}
	runFunctional(t, s)
	if s.Dist(0) != 0 {
		t.Error("source distance wrong")
	}
}

func TestFunctionalBarnesHut(t *testing.T) {
	b, err := NewFunctionalBarnesHut(600, 14)
	if err != nil {
		t.Fatal(err)
	}
	runFunctional(t, b)
}

func TestFunctionalMandelbrot(t *testing.T) {
	m, err := NewFunctionalMandelbrot(200, 150)
	if err != nil {
		t.Fatal(err)
	}
	runFunctional(t, m)
}

func TestFunctionalSkipList(t *testing.T) {
	s, err := NewFunctionalSkipList(20000, 15)
	if err != nil {
		t.Fatal(err)
	}
	runFunctional(t, s)
	if !s.Contains(3) { // first generated key is 0*7+3
		t.Error("known key missing")
	}
	if s.Contains(4) {
		t.Error("absent key found")
	}
}

func TestFunctionalFaceDetect(t *testing.T) {
	f, err := NewFunctionalFaceDetect(240, 180, 3, 16)
	if err != nil {
		t.Fatal(err)
	}
	runFunctional(t, f)
	if len(f.Detections()) < 3 {
		t.Errorf("detections = %d, want ≥3 planted faces", len(f.Detections()))
	}
}

func TestFunctionalBlackscholes(t *testing.T) {
	b, err := NewFunctionalBlackscholes(5000, 17)
	if err != nil {
		t.Fatal(err)
	}
	runFunctional(t, b)
	if b.Call(0) < 0 {
		t.Error("negative option price")
	}
}

func TestFunctionalMatMul(t *testing.T) {
	m, err := NewFunctionalMatMul(64, 18)
	if err != nil {
		t.Fatal(err)
	}
	runFunctional(t, m)
}

func TestFunctionalNBody(t *testing.T) {
	b, err := NewFunctionalNBody(96, 3, 19)
	if err != nil {
		t.Fatal(err)
	}
	runFunctional(t, b)
}

func TestFunctionalRayTracer(t *testing.T) {
	r, err := NewFunctionalRayTracer(64, 64, 16, 20)
	if err != nil {
		t.Fatal(err)
	}
	runFunctional(t, r)
}

func TestFunctionalSeismic(t *testing.T) {
	s, err := NewFunctionalSeismic(64, 64, 30, 21)
	if err != nil {
		t.Fatal(err)
	}
	runFunctional(t, s)
}

func TestVerifyBeforeRunErrors(t *testing.T) {
	cases := []Functional{
		must(NewFunctionalBFS(20, 20, 1)),
		must(NewFunctionalCC(20, 20, 1)),
		must(NewFunctionalSSSP(20, 20, 1)),
		must(NewFunctionalBarnesHut(10, 1)),
		must(NewFunctionalMandelbrot(10, 10)),
		must(NewFunctionalFaceDetect(100, 100, 1, 1)),
		must(NewFunctionalBlackscholes(10, 1)),
		must(NewFunctionalNBody(4, 1, 1)),
		must(NewFunctionalRayTracer(8, 8, 2, 1)),
		must(NewFunctionalSeismic(16, 16, 2, 1)),
	}
	for _, f := range cases {
		if err := f.Verify(); err == nil {
			t.Errorf("%s: Verify before Run should error", f.Name())
		}
	}
}

func must[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}

func TestConstructorValidation(t *testing.T) {
	if _, err := NewFunctionalBFS(1, 1, 0); err == nil {
		t.Error("tiny BFS grid accepted")
	}
	if _, err := NewFunctionalBarnesHut(1, 0); err == nil {
		t.Error("1-body BarnesHut accepted")
	}
	if _, err := NewFunctionalMandelbrot(0, 5); err == nil {
		t.Error("empty mandelbrot accepted")
	}
	if _, err := NewFunctionalSkipList(0, 0); err == nil {
		t.Error("empty skiplist accepted")
	}
	if _, err := NewFunctionalFaceDetect(10, 10, 1, 0); err == nil {
		t.Error("tiny facedetect image accepted")
	}
	if _, err := NewFunctionalMatMul(30, 0); err == nil {
		t.Error("non-tile-aligned matmul accepted")
	}
	if _, err := NewFunctionalNBody(1, 1, 0); err == nil {
		t.Error("1-body nbody accepted")
	}
	if _, err := NewFunctionalSeismic(4, 4, 1, 0); err == nil {
		t.Error("tiny seismic grid accepted")
	}
	if _, err := NewFunctionalRayTracer(0, 8, 2, 0); err == nil {
		t.Error("empty raytracer accepted")
	}
	if _, err := NewFunctionalBlackscholes(0, 0); err == nil {
		t.Error("empty blackscholes accepted")
	}
}
