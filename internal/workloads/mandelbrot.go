package workloads

import (
	"fmt"
	"math/rand"

	"github.com/hetsched/eas/internal/device"
	"github.com/hetsched/eas/internal/engine"
	"github.com/hetsched/eas/internal/wclass"
)

// mbCost is the per-pixel cost: iteration counts vary wildly between
// neighboring pixels (divergence), and the image/palette writes stream
// through the cache.
func mbCost() device.CostProfile {
	return device.CostProfile{
		FLOPs:        900,
		MemOps:       24,
		L3MissRatio:  0.45,
		Instructions: 500,
		Divergence:   0.7,
	}
}

// Mandelbrot is the MB workload: one kernel over a 7680×6144 image on
// both platforms.
func Mandelbrot() Workload {
	sched := func(platformName string, seed int64) ([]Invocation, error) {
		if platformName != "desktop" && platformName != "tablet" {
			return nil, errUnsupported("MB", platformName)
		}
		rng := rand.New(rand.NewSource(seed))
		cpuF, gpuF := noise(rng, 0.05)
		return []Invocation{{
			Kernel: engine.Kernel{
				Name:           "MB.escape",
				Cost:           mbCost(),
				CPUSpeedFactor: cpuF,
				GPUSpeedFactor: gpuF,
			},
			N: 7680 * 6144,
		}}, nil
	}
	return Workload{
		Name:             "Mandelbrot",
		Abbrev:           "MB",
		Irregular:        true,
		Paper:            wclass.Category{Memory: true, CPUShort: false, GPUShort: false},
		PaperInvocations: 1,
		Inputs: map[string]string{
			"desktop": "image 7680x6144",
			"tablet":  "image 7680x6144",
		},
		Schedule: sched,
	}
}

// FunctionalMandelbrot computes escape iterations for every pixel of a
// region of the complex plane.
type FunctionalMandelbrot struct {
	w, h    int
	maxIter int32
	iters   []int32
}

// NewFunctionalMandelbrot builds a w×h instance.
func NewFunctionalMandelbrot(w, h int) (*FunctionalMandelbrot, error) {
	if w < 1 || h < 1 {
		return nil, fmt.Errorf("mandelbrot: bad image size %dx%d", w, h)
	}
	return &FunctionalMandelbrot{w: w, h: h, maxIter: 256}, nil
}

// Name implements Functional.
func (m *FunctionalMandelbrot) Name() string { return "MB" }

// Iterations returns the per-pixel escape counts (valid after Run).
func (m *FunctionalMandelbrot) Iterations() []int32 { return m.iters }

// pixel maps an index to complex coordinates over [-2.2,1] × [-1.2,1.2].
func (m *FunctionalMandelbrot) pixel(i int) (cr, ci float64) {
	x, y := i%m.w, i/m.w
	cr = -2.2 + 3.2*float64(x)/float64(m.w)
	ci = -1.2 + 2.4*float64(y)/float64(m.h)
	return cr, ci
}

func escape(cr, ci float64, maxIter int32) int32 {
	var zr, zi float64
	for it := int32(0); it < maxIter; it++ {
		zr, zi = zr*zr-zi*zi+cr, 2*zr*zi+ci
		if zr*zr+zi*zi > 4 {
			return it
		}
	}
	return maxIter
}

// Run implements Functional.
func (m *FunctionalMandelbrot) Run(ex Executor) error {
	m.iters = make([]int32, m.w*m.h)
	return ex.ParallelFor(m.w*m.h, func(i int) {
		cr, ci := m.pixel(i)
		m.iters[i] = escape(cr, ci, m.maxIter)
	})
}

// Verify implements Functional: sampled pixels must match a serial
// recomputation, and known interior/exterior points must classify
// correctly.
func (m *FunctionalMandelbrot) Verify() error {
	if m.iters == nil {
		return fmt.Errorf("mandelbrot: Verify called before Run")
	}
	step := len(m.iters)/257 + 1
	for i := 0; i < len(m.iters); i += step {
		cr, ci := m.pixel(i)
		if want := escape(cr, ci, m.maxIter); m.iters[i] != want {
			return fmt.Errorf("mandelbrot: pixel %d = %d, want %d", i, m.iters[i], want)
		}
	}
	// The origin is in the set; the top-left corner escapes instantly.
	originIdx := (m.h/2)*m.w + int(float64(m.w)*2.2/3.2)
	if m.iters[originIdx] != m.maxIter {
		return fmt.Errorf("mandelbrot: origin escaped after %d iterations", m.iters[originIdx])
	}
	if m.iters[0] >= 8 {
		return fmt.Errorf("mandelbrot: corner pixel should escape quickly, took %d", m.iters[0])
	}
	return nil
}
