package workloads

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/hetsched/eas/internal/device"
	"github.com/hetsched/eas/internal/engine"
	"github.com/hetsched/eas/internal/wclass"
)

// mmTile is the tile edge: one work item computes a 16×16 output tile.
const mmTile = 16

// mmCost returns the per-tile cost for a dim×dim multiply: 2·dim FLOPs
// per output element over 256 elements, with streaming loads of the
// operand panels.
func mmCost(dim int) device.CostProfile {
	return device.CostProfile{
		FLOPs:        2 * float64(dim) * mmTile * mmTile,
		MemOps:       2 * float64(dim) * mmTile,
		L3MissRatio:  0.1,
		Instructions: float64(dim) * mmTile * 4,
		Divergence:   0,
	}
}

// MatrixMultiply is the MM workload: one kernel computing C = A·B for
// 2048² (desktop) or 1024² (tablet) matrices, one item per 16×16 tile.
func MatrixMultiply() Workload {
	sched := func(platformName string, seed int64) ([]Invocation, error) {
		var dim int
		switch platformName {
		case "desktop":
			dim = 2048
		case "tablet":
			dim = 1024
		default:
			return nil, errUnsupported("MM", platformName)
		}
		rng := rand.New(rand.NewSource(seed))
		cpuF, gpuF := noise(rng, 0.01)
		tiles := (dim / mmTile) * (dim / mmTile)
		return []Invocation{{
			Kernel: engine.Kernel{
				Name:           "MM.tile",
				Cost:           mmCost(dim),
				CPUSpeedFactor: cpuF,
				GPUSpeedFactor: gpuF,
			},
			N: tiles,
		}}, nil
	}
	return Workload{
		Name:             "Matrix Multiply",
		Abbrev:           "MM",
		Irregular:        false,
		Paper:            wclass.Category{Memory: false, CPUShort: false, GPUShort: false},
		PaperInvocations: 1,
		Inputs: map[string]string{
			"desktop": "2048 by 2048",
			"tablet":  "1024x1024",
		},
		Schedule: sched,
	}
}

// FunctionalMatMul computes C = A·B with one parallel item per output
// tile.
type FunctionalMatMul struct {
	dim     int
	a, b, c []float32
}

// NewFunctionalMatMul builds dim×dim operands; dim must be a multiple
// of the 16-element tile edge.
func NewFunctionalMatMul(dim int, seed int64) (*FunctionalMatMul, error) {
	if dim < mmTile || dim%mmTile != 0 {
		return nil, fmt.Errorf("matmul: dim %d must be a positive multiple of %d", dim, mmTile)
	}
	rng := rand.New(rand.NewSource(seed))
	m := &FunctionalMatMul{
		dim: dim,
		a:   make([]float32, dim*dim),
		b:   make([]float32, dim*dim),
		c:   make([]float32, dim*dim),
	}
	for i := range m.a {
		m.a[i] = rng.Float32() - 0.5
		m.b[i] = rng.Float32() - 0.5
	}
	return m, nil
}

// Name implements Functional.
func (m *FunctionalMatMul) Name() string { return "MM" }

// At returns C[i][j] (valid after Run).
func (m *FunctionalMatMul) At(i, j int) float32 { return m.c[i*m.dim+j] }

// Run implements Functional: each item fills one 16×16 tile of C.
func (m *FunctionalMatMul) Run(ex Executor) error {
	tilesPerRow := m.dim / mmTile
	return ex.ParallelFor(tilesPerRow*tilesPerRow, func(t int) {
		ti, tj := t/tilesPerRow, t%tilesPerRow
		i0, j0 := ti*mmTile, tj*mmTile
		dim := m.dim
		for i := i0; i < i0+mmTile; i++ {
			for j := j0; j < j0+mmTile; j++ {
				var sum float32
				for k := 0; k < dim; k++ {
					sum += m.a[i*dim+k] * m.b[k*dim+j]
				}
				m.c[i*dim+j] = sum
			}
		}
	})
}

// Verify implements Functional: sampled entries must match a serial dot
// product.
func (m *FunctionalMatMul) Verify() error {
	step := m.dim/7 + 1
	for i := 0; i < m.dim; i += step {
		for j := 0; j < m.dim; j += step {
			var want float32
			for k := 0; k < m.dim; k++ {
				want += m.a[i*m.dim+k] * m.b[k*m.dim+j]
			}
			got := m.c[i*m.dim+j]
			if math.Abs(float64(got-want)) > 1e-3*math.Max(1, math.Abs(float64(want))) {
				return fmt.Errorf("matmul: C[%d][%d] = %v, want %v", i, j, got, want)
			}
		}
	}
	return nil
}
