package workloads

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/hetsched/eas/internal/device"
	"github.com/hetsched/eas/internal/engine"
	"github.com/hetsched/eas/internal/wclass"
)

// nbCost returns the per-body cost of one direct n-body step over n
// bodies: ~25 FLOPs per pairwise interaction, operands served from
// cache.
func nbCost(n int) device.CostProfile {
	return device.CostProfile{
		FLOPs:        25 * float64(n),
		MemOps:       4 * float64(n),
		L3MissRatio:  0.05,
		Instructions: 4 * float64(n),
		Divergence:   0,
	}
}

// NBody is the NB workload: 101 simulation steps over 4096 (desktop)
// or 1024 (tablet) bodies.
//
// Note: Table 1 classifies NB as CPU-Long/GPU-Short on the authors'
// desktop. With 4096 items per invocation, both alone-run estimates
// stay below the 100 ms threshold in our model, so our runtime
// classifies NB as Short/Short; EXPERIMENTS.md records the deviation.
func NBody() Workload {
	sched := func(platformName string, seed int64) ([]Invocation, error) {
		var n int
		switch platformName {
		case "desktop":
			n = 4096
		case "tablet":
			n = 1024
		default:
			return nil, errUnsupported("NB", platformName)
		}
		rng := rand.New(rand.NewSource(seed))
		invs := make([]Invocation, 101)
		for k := range invs {
			cpuF, gpuF := noise(rng, 0.01)
			invs[k] = Invocation{
				Kernel: engine.Kernel{
					Name:           "NB.step",
					Cost:           nbCost(n),
					CPUSpeedFactor: cpuF,
					GPUSpeedFactor: gpuF,
				},
				N: n,
			}
		}
		return invs, nil
	}
	return Workload{
		Name:             "N-Body",
		Abbrev:           "NB",
		Irregular:        false,
		Paper:            wclass.Category{Memory: false, CPUShort: false, GPUShort: true},
		PaperInvocations: 101,
		Inputs: map[string]string{
			"desktop": "4096 bodies",
			"tablet":  "1024 bodies",
		},
		Schedule: sched,
	}
}

// FunctionalNBody advances a direct-summation gravitational system.
type FunctionalNBody struct {
	steps          int
	px, py, pz     []float64
	vx, vy, vz     []float64
	ax, ay, az     []float64
	mass           []float64
	initialEnergy  float64
	energyComputed bool
}

// NewFunctionalNBody builds n bodies for the given number of steps.
func NewFunctionalNBody(n, steps int, seed int64) (*FunctionalNBody, error) {
	if n < 2 || steps < 1 {
		return nil, fmt.Errorf("nbody: need ≥2 bodies and ≥1 step, got %d/%d", n, steps)
	}
	rng := rand.New(rand.NewSource(seed))
	b := &FunctionalNBody{
		steps: steps,
		px:    make([]float64, n), py: make([]float64, n), pz: make([]float64, n),
		vx: make([]float64, n), vy: make([]float64, n), vz: make([]float64, n),
		ax: make([]float64, n), ay: make([]float64, n), az: make([]float64, n),
		mass: make([]float64, n),
	}
	for i := 0; i < n; i++ {
		b.px[i] = rng.NormFloat64() * 10
		b.py[i] = rng.NormFloat64() * 10
		b.pz[i] = rng.NormFloat64() * 10
		b.vx[i] = rng.NormFloat64() * 0.01
		b.vy[i] = rng.NormFloat64() * 0.01
		b.vz[i] = rng.NormFloat64() * 0.01
		b.mass[i] = 0.5 + rng.Float64()
	}
	return b, nil
}

// Name implements Functional.
func (b *FunctionalNBody) Name() string { return "NB" }

const nbSoftening = 1e-2
const nbDt = 1e-4

// totalEnergy returns kinetic + potential energy.
func (b *FunctionalNBody) totalEnergy() float64 {
	var e float64
	n := len(b.px)
	for i := 0; i < n; i++ {
		v2 := b.vx[i]*b.vx[i] + b.vy[i]*b.vy[i] + b.vz[i]*b.vz[i]
		e += 0.5 * b.mass[i] * v2
		for j := i + 1; j < n; j++ {
			dx := b.px[j] - b.px[i]
			dy := b.py[j] - b.py[i]
			dz := b.pz[j] - b.pz[i]
			d := math.Sqrt(dx*dx + dy*dy + dz*dz + nbSoftening)
			e -= b.mass[i] * b.mass[j] / d
		}
	}
	return e
}

// Run implements Functional: each step computes accelerations in
// parallel, then integrates.
func (b *FunctionalNBody) Run(ex Executor) error {
	b.initialEnergy = b.totalEnergy()
	b.energyComputed = true
	n := len(b.px)
	for s := 0; s < b.steps; s++ {
		err := ex.ParallelFor(n, func(i int) {
			var axi, ayi, azi float64
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				dx := b.px[j] - b.px[i]
				dy := b.py[j] - b.py[i]
				dz := b.pz[j] - b.pz[i]
				d2 := dx*dx + dy*dy + dz*dz + nbSoftening
				inv := 1 / (d2 * math.Sqrt(d2))
				f := b.mass[j] * inv
				axi += f * dx
				ayi += f * dy
				azi += f * dz
			}
			b.ax[i], b.ay[i], b.az[i] = axi, ayi, azi
		})
		if err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			b.vx[i] += b.ax[i] * nbDt
			b.vy[i] += b.ay[i] * nbDt
			b.vz[i] += b.az[i] * nbDt
			b.px[i] += b.vx[i] * nbDt
			b.py[i] += b.vy[i] * nbDt
			b.pz[i] += b.vz[i] * nbDt
		}
	}
	return nil
}

// Verify implements Functional: with a small symplectic-ish step, total
// energy must be approximately conserved.
func (b *FunctionalNBody) Verify() error {
	if !b.energyComputed {
		return fmt.Errorf("nbody: Verify called before Run")
	}
	final := b.totalEnergy()
	drift := math.Abs(final-b.initialEnergy) / math.Max(math.Abs(b.initialEnergy), 1e-9)
	if drift > 0.02 {
		return fmt.Errorf("nbody: energy drift %.3f%% exceeds 2%% (E0=%v, E=%v)", 100*drift, b.initialEnergy, final)
	}
	return nil
}
