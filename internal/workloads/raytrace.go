package workloads

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/hetsched/eas/internal/device"
	"github.com/hetsched/eas/internal/engine"
	"github.com/hetsched/eas/internal/wclass"
)

// rtCost returns the per-pixel cost: every primary ray tests every
// sphere plus shading with a handful of lights — regular, FLOP-heavy.
func rtCost(spheres, lights int) device.CostProfile {
	perRay := float64(spheres)*40 + float64(lights)*60
	return device.CostProfile{
		FLOPs:        perRay,
		MemOps:       float64(spheres) / 2,
		L3MissRatio:  0.05,
		Instructions: perRay / 4,
		Divergence:   0.15,
	}
}

// RayTracer is the RT workload: one kernel rendering a sphere scene
// (256 spheres desktop, 225 tablet; 3 materials, 5 lights).
func RayTracer() Workload {
	sched := func(platformName string, seed int64) ([]Invocation, error) {
		var spheres int
		switch platformName {
		case "desktop":
			spheres = 256
		case "tablet":
			spheres = 225
		default:
			return nil, errUnsupported("RT", platformName)
		}
		rng := rand.New(rand.NewSource(seed))
		cpuF, gpuF := noise(rng, 0.02)
		return []Invocation{{
			Kernel: engine.Kernel{
				Name:           "RT.render",
				Cost:           rtCost(spheres, 5),
				CPUSpeedFactor: cpuF,
				GPUSpeedFactor: gpuF,
			},
			N: 2048 * 2048,
		}}, nil
	}
	return Workload{
		Name:             "Ray Tracer",
		Abbrev:           "RT",
		Irregular:        false,
		Paper:            wclass.Category{Memory: false, CPUShort: false, GPUShort: false},
		PaperInvocations: 1,
		Inputs: map[string]string{
			"desktop": "sphere=256,material=3,light=5",
			"tablet":  "sphere=225,material=3,light=5",
		},
		Schedule: sched,
	}
}

// rtSphere is one scene sphere.
type rtSphere struct {
	x, y, z, r float64
	mat        int
}

// rtLight is one point light.
type rtLight struct {
	x, y, z, intensity float64
}

// FunctionalRayTracer renders a sphere scene with flat shading and
// shadows.
type FunctionalRayTracer struct {
	w, h    int
	spheres []rtSphere
	lights  []rtLight
	img     []float32
}

// NewFunctionalRayTracer builds a deterministic scene.
func NewFunctionalRayTracer(w, h, spheres int, seed int64) (*FunctionalRayTracer, error) {
	if w < 1 || h < 1 || spheres < 1 {
		return nil, fmt.Errorf("raytrace: bad scene %dx%d with %d spheres", w, h, spheres)
	}
	rng := rand.New(rand.NewSource(seed))
	rt := &FunctionalRayTracer{w: w, h: h, img: make([]float32, w*h)}
	for i := 0; i < spheres; i++ {
		rt.spheres = append(rt.spheres, rtSphere{
			x:   rng.Float64()*20 - 10,
			y:   rng.Float64()*20 - 10,
			z:   10 + rng.Float64()*30,
			r:   0.5 + rng.Float64(),
			mat: i % 3,
		})
	}
	for i := 0; i < 5; i++ {
		rt.lights = append(rt.lights, rtLight{
			x: rng.Float64()*40 - 20, y: rng.Float64()*40 - 20, z: rng.Float64() * 10,
			intensity: 0.4 + 0.4*rng.Float64(),
		})
	}
	return rt, nil
}

// Name implements Functional.
func (rt *FunctionalRayTracer) Name() string { return "RT" }

// Pixel returns the rendered intensity at (x, y) (valid after Run).
func (rt *FunctionalRayTracer) Pixel(x, y int) float32 { return rt.img[y*rt.w+x] }

// trace computes the intensity for pixel i.
func (rt *FunctionalRayTracer) trace(i int) float32 {
	px, py := i%rt.w, i/rt.w
	// Primary ray from the origin through the image plane at z=1.
	dx := (float64(px)/float64(rt.w) - 0.5) * 2
	dy := (float64(py)/float64(rt.h) - 0.5) * 2
	dz := 1.0
	norm := math.Sqrt(dx*dx + dy*dy + dz*dz)
	dx, dy, dz = dx/norm, dy/norm, dz/norm

	// Nearest sphere intersection.
	bestT := math.Inf(1)
	best := -1
	for s, sp := range rt.spheres {
		// |o + t·d - c|² = r² with o = 0.
		b := dx*sp.x + dy*sp.y + dz*sp.z
		c := sp.x*sp.x + sp.y*sp.y + sp.z*sp.z - sp.r*sp.r
		disc := b*b - c
		if disc < 0 {
			continue
		}
		t := b - math.Sqrt(disc)
		if t > 1e-6 && t < bestT {
			bestT = t
			best = s
		}
	}
	if best < 0 {
		return 0.05 // background
	}
	sp := rt.spheres[best]
	hx, hy, hz := dx*bestT, dy*bestT, dz*bestT
	nx, ny, nz := (hx-sp.x)/sp.r, (hy-sp.y)/sp.r, (hz-sp.z)/sp.r
	albedo := 0.4 + 0.2*float64(sp.mat)
	var intensity float64
	for _, l := range rt.lights {
		lx, ly, lz := l.x-hx, l.y-hy, l.z-hz
		ln := math.Sqrt(lx*lx + ly*ly + lz*lz)
		lx, ly, lz = lx/ln, ly/ln, lz/ln
		lambert := nx*lx + ny*ly + nz*lz
		if lambert > 0 {
			intensity += albedo * l.intensity * lambert
		}
	}
	return float32(math.Min(intensity+0.05, 1))
}

// Run implements Functional.
func (rt *FunctionalRayTracer) Run(ex Executor) error {
	return ex.ParallelFor(rt.w*rt.h, func(i int) {
		rt.img[i] = rt.trace(i)
	})
}

// Verify implements Functional: sampled pixels must match a serial
// retrace, and the image must not be flat (the scene must be visible).
func (rt *FunctionalRayTracer) Verify() error {
	if rt.img == nil {
		return fmt.Errorf("raytrace: Verify called before Run")
	}
	step := len(rt.img)/511 + 1
	for i := 0; i < len(rt.img); i += step {
		if want := rt.trace(i); rt.img[i] != want {
			return fmt.Errorf("raytrace: pixel %d = %v, want %v", i, rt.img[i], want)
		}
	}
	lo, hi := rt.img[0], rt.img[0]
	for _, v := range rt.img {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi-lo < 0.05 {
		return fmt.Errorf("raytrace: image is flat (min=%v max=%v); scene not rendered", lo, hi)
	}
	return nil
}
