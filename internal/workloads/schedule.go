package workloads

import "math"

// bellFrontiers synthesizes a road-network-like frontier schedule:
// levels ramp up, plateau, and decay, as in BFS over a high-diameter
// graph. The sizes sum to ~total across `levels` invocations.
func bellFrontiers(levels, total int) []int {
	if levels < 1 {
		levels = 1
	}
	shape := make([]float64, levels)
	sum := 0.0
	mid := 0.45 * float64(levels)
	width := 0.22 * float64(levels)
	for k := range shape {
		d := (float64(k) - mid) / width
		shape[k] = math.Exp(-d*d) + 0.002
		sum += shape[k]
	}
	out := make([]int, levels)
	for k := range out {
		n := int(math.Round(shape[k] / sum * float64(total)))
		if n < 1 {
			n = 1
		}
		out[k] = n
	}
	return out
}

// decayingWorklist synthesizes a label-propagation-style schedule: a
// heavy head of near-full sweeps decaying geometrically, then a long
// tail of small fix-up invocations (trailing components), totalling
// `invocations` kernel launches.
func decayingWorklist(invocations, firstSweep int, decay float64, tailFloor int) []int {
	out := make([]int, invocations)
	n := float64(firstSweep)
	for k := range out {
		v := int(n)
		if v < tailFloor {
			v = tailFloor
		}
		out[k] = v
		n *= decay
	}
	return out
}

// geometricStages synthesizes a detection-cascade schedule: each stage
// processes the survivors of the previous one.
func geometricStages(stages, firstStage int, survival float64) []int {
	out := make([]int, stages)
	n := float64(firstStage)
	for k := range out {
		v := int(n)
		if v < 1 {
			v = 1
		}
		out[k] = v
		n *= survival
	}
	return out
}
