package workloads

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/hetsched/eas/internal/device"
	"github.com/hetsched/eas/internal/engine"
	"github.com/hetsched/eas/internal/wclass"
)

// smCost is the per-cell cost of one wave-propagation frame: a 5-point
// stencil streaming through memory.
func smCost() device.CostProfile {
	return device.CostProfile{
		FLOPs:        40,
		MemOps:       12,
		L3MissRatio:  0.35,
		Instructions: 50,
		Divergence:   0,
	}
}

// Seismic is the SM workload (from TBB): 100 wave-propagation frames
// over a 1950×1326 grid on both platforms.
func Seismic() Workload {
	sched := func(platformName string, seed int64) ([]Invocation, error) {
		if platformName != "desktop" && platformName != "tablet" {
			return nil, errUnsupported("SM", platformName)
		}
		rng := rand.New(rand.NewSource(seed))
		invs := make([]Invocation, 100)
		for k := range invs {
			cpuF, gpuF := noise(rng, 0.01)
			invs[k] = Invocation{
				Kernel: engine.Kernel{
					Name:           "SM.frame",
					Cost:           smCost(),
					CPUSpeedFactor: cpuF,
					GPUSpeedFactor: gpuF,
				},
				N: 1950 * 1326,
			}
		}
		return invs, nil
	}
	return Workload{
		Name:             "Seismic",
		Abbrev:           "SM",
		Irregular:        false,
		Paper:            wclass.Category{Memory: true, CPUShort: true, GPUShort: true},
		PaperInvocations: 100,
		Inputs: map[string]string{
			"desktop": "1950 by 1326, 100 frames",
			"tablet":  "1950 by 1326, 100 frames",
		},
		Schedule: sched,
	}
}

// FunctionalSeismic propagates a 2-D wave with a leapfrog 5-point
// stencil from a point source.
type FunctionalSeismic struct {
	w, h      int
	frames    int
	prev, cur []float32
	next      []float32
	sourceIdx int
	ran       bool
}

// NewFunctionalSeismic builds a w×h grid advanced for the given frames.
func NewFunctionalSeismic(w, h, frames int, seed int64) (*FunctionalSeismic, error) {
	if w < 8 || h < 8 || frames < 1 {
		return nil, fmt.Errorf("seismic: bad grid %dx%d / %d frames", w, h, frames)
	}
	rng := rand.New(rand.NewSource(seed))
	s := &FunctionalSeismic{
		w: w, h: h, frames: frames,
		prev: make([]float32, w*h),
		cur:  make([]float32, w*h),
		next: make([]float32, w*h),
	}
	// Point source away from the borders.
	sx := 2 + rng.Intn(w-4)
	sy := 2 + rng.Intn(h-4)
	s.sourceIdx = sy*w + sx
	s.cur[s.sourceIdx] = 1
	return s, nil
}

// Name implements Functional.
func (s *FunctionalSeismic) Name() string { return "SM" }

// Field returns the final wave field (valid after Run).
func (s *FunctionalSeismic) Field() []float32 { return s.cur }

const smCourant = 0.4

// Run implements Functional: one ParallelFor per frame.
func (s *FunctionalSeismic) Run(ex Executor) error {
	w, h := s.w, s.h
	for f := 0; f < s.frames; f++ {
		prev, cur, next := s.prev, s.cur, s.next
		err := ex.ParallelFor(w*h, func(i int) {
			x, y := i%w, i/w
			if x == 0 || y == 0 || x == w-1 || y == h-1 {
				next[i] = 0 // absorbing-ish border
				return
			}
			lap := cur[i-1] + cur[i+1] + cur[i-w] + cur[i+w] - 4*cur[i]
			next[i] = 2*cur[i] - prev[i] + smCourant*lap
		})
		if err != nil {
			return err
		}
		s.prev, s.cur, s.next = cur, next, prev
	}
	s.ran = true
	return nil
}

// Verify implements Functional: the wave must have propagated (non-zero
// field away from the source) while staying numerically stable.
func (s *FunctionalSeismic) Verify() error {
	if !s.ran {
		return fmt.Errorf("seismic: Verify called before Run")
	}
	var maxAbs float64
	nonZero := 0
	for _, v := range s.cur {
		a := math.Abs(float64(v))
		if a > maxAbs {
			maxAbs = a
		}
		if a > 1e-7 {
			nonZero++
		}
	}
	if math.IsNaN(maxAbs) || maxAbs > 10 {
		return fmt.Errorf("seismic: unstable field, max |u| = %v", maxAbs)
	}
	minSpread := s.frames * s.frames / 4
	if limit := s.w * s.h / 2; minSpread > limit {
		minSpread = limit
	}
	if nonZero < minSpread {
		return fmt.Errorf("seismic: wave did not propagate (%d active cells)", nonZero)
	}
	return nil
}
