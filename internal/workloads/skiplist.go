package workloads

import (
	"fmt"
	"math/rand"
	"sync/atomic"

	"github.com/hetsched/eas/internal/device"
	"github.com/hetsched/eas/internal/engine"
	"github.com/hetsched/eas/internal/wclass"
)

// slCost is the per-key cost: a multi-level pointer chase with almost
// every hop missing the cache.
func slCost() device.CostProfile {
	return device.CostProfile{
		FLOPs:        0,
		MemOps:       30,
		L3MissRatio:  0.75,
		Instructions: 220,
		Divergence:   0.9,
	}
}

// SkipList is the SL workload: one kernel inserting a key set into a
// concurrent skip list (500M keys desktop, 45M tablet).
func SkipList() Workload {
	sched := func(platformName string, seed int64) ([]Invocation, error) {
		var n int
		switch platformName {
		case "desktop":
			n = 500_000_000
		case "tablet":
			n = 45_000_000
		default:
			return nil, errUnsupported("SL", platformName)
		}
		rng := rand.New(rand.NewSource(seed))
		cpuF, gpuF := noise(rng, 0.06)
		return []Invocation{{
			Kernel: engine.Kernel{
				Name:           "SL.insert",
				Cost:           slCost(),
				CPUSpeedFactor: cpuF,
				GPUSpeedFactor: gpuF,
			},
			N: n,
		}}, nil
	}
	return Workload{
		Name:             "SkipList",
		Abbrev:           "SL",
		Irregular:        true,
		Paper:            wclass.Category{Memory: true, CPUShort: false, GPUShort: false},
		PaperInvocations: 1,
		Inputs: map[string]string{
			"desktop": "500M keys",
			"tablet":  "45M keys",
		},
		Schedule: sched,
	}
}

const slMaxLevel = 16

// slNode is a lock-free skip-list node.
type slNode struct {
	key  int64
	next [slMaxLevel]atomic.Pointer[slNode]
}

// FunctionalSkipList inserts a deterministic key set concurrently into
// a lock-free (insert-only) skip list.
type FunctionalSkipList struct {
	head *slNode
	keys []int64
	seed int64
}

// NewFunctionalSkipList prepares n distinct keys in shuffled order.
func NewFunctionalSkipList(n int, seed int64) (*FunctionalSkipList, error) {
	if n < 1 {
		return nil, fmt.Errorf("skiplist: need at least one key, got %d", n)
	}
	rng := rand.New(rand.NewSource(seed))
	keys := make([]int64, n)
	for i := range keys {
		keys[i] = int64(i)*7 + 3 // distinct, non-contiguous
	}
	rng.Shuffle(n, func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
	return &FunctionalSkipList{
		head: &slNode{key: -1 << 62},
		keys: keys,
		seed: seed,
	}, nil
}

// Name implements Functional.
func (s *FunctionalSkipList) Name() string { return "SL" }

// randomLevel derives a deterministic tower height from the key.
func randomLevel(key int64) int {
	// xorshift hash of the key; count trailing ones ≈ geometric(1/2).
	x := uint64(key)*0x9e3779b97f4a7c15 + 1
	x ^= x >> 29
	level := 1
	for x&1 == 1 && level < slMaxLevel {
		level++
		x >>= 1
	}
	return level
}

// insert adds key with lock-free bottom-up linking.
func (s *FunctionalSkipList) insert(key int64) {
	level := randomLevel(key)
	node := &slNode{key: key}
	for l := 0; l < level; l++ {
		for {
			pred, succ := s.findAt(key, l)
			node.next[l].Store(succ)
			if pred.next[l].CompareAndSwap(succ, node) {
				break
			}
		}
	}
}

// findAt locates the insertion point for key at one level.
func (s *FunctionalSkipList) findAt(key int64, level int) (pred, succ *slNode) {
	pred = s.head
	// Descend from the top for search efficiency.
	for l := slMaxLevel - 1; l >= level; l-- {
		for {
			n := pred.next[l].Load()
			if n == nil || n.key >= key {
				break
			}
			pred = n
		}
	}
	for {
		n := pred.next[level].Load()
		if n == nil || n.key >= key {
			return pred, n
		}
		pred = n
	}
}

// Contains reports whether key is in the list.
func (s *FunctionalSkipList) Contains(key int64) bool {
	_, succ := s.findAt(key, 0)
	return succ != nil && succ.key == key
}

// Run implements Functional: every key inserted by a parallel
// iteration.
func (s *FunctionalSkipList) Run(ex Executor) error {
	return ex.ParallelFor(len(s.keys), func(i int) {
		s.insert(s.keys[i])
	})
}

// Verify implements Functional: the bottom level must be sorted and
// contain exactly the inserted key set.
func (s *FunctionalSkipList) Verify() error {
	count := 0
	prev := int64(-1 << 62)
	for n := s.head.next[0].Load(); n != nil; n = n.next[0].Load() {
		if n.key <= prev {
			return fmt.Errorf("skiplist: out of order: %d after %d", n.key, prev)
		}
		prev = n.key
		count++
	}
	if count != len(s.keys) {
		return fmt.Errorf("skiplist: %d keys present, want %d", count, len(s.keys))
	}
	// Spot-check membership.
	step := len(s.keys)/64 + 1
	for i := 0; i < len(s.keys); i += step {
		if !s.Contains(s.keys[i]) {
			return fmt.Errorf("skiplist: key %d missing", s.keys[i])
		}
	}
	return nil
}
