package workloads

import (
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"

	"github.com/hetsched/eas/internal/device"
	"github.com/hetsched/eas/internal/engine"
	"github.com/hetsched/eas/internal/graphgen"
	"github.com/hetsched/eas/internal/wclass"
)

// ssspCost is the per-relaxation cost: neighbor scans with weight
// arithmetic and scattered distance updates.
func ssspCost() device.CostProfile {
	return device.CostProfile{
		FLOPs:        12,
		MemOps:       14,
		L3MissRatio:  0.45,
		Instructions: 160,
		Divergence:   0.9,
	}
}

// ShortestPath is the SP workload: Bellman-Ford-style worklist SSSP on
// the road network, 2577 kernel invocations on the desktop input.
func ShortestPath() Workload {
	return Workload{
		Name:             "Shortest Path",
		Abbrev:           "SP",
		Irregular:        true,
		Paper:            wclass.Category{Memory: true, CPUShort: true, GPUShort: true},
		PaperInvocations: 2577,
		Inputs: map[string]string{
			"desktop": "synthetic road network, |V|=6.2M (W-USA-like)",
		},
		Schedule: func(platformName string, seed int64) ([]Invocation, error) {
			if platformName != "desktop" {
				return nil, errUnsupported("SP", platformName)
			}
			rng := rand.New(rand.NewSource(seed))
			// SSSP worklists re-relax vertices, so total work exceeds
			// |V|; frontiers follow the same bell shape as BFS.
			frontiers := bellFrontiers(2577, 14_500_000)
			invs := make([]Invocation, len(frontiers))
			for k, n := range frontiers {
				cpuF, gpuF := noise(rng, 0.06)
				invs[k] = Invocation{
					Kernel: engine.Kernel{
						Name:           "SP.relax",
						Cost:           ssspCost(),
						CPUSpeedFactor: cpuF,
						GPUSpeedFactor: gpuF,
					},
					N: n,
				}
			}
			return invs, nil
		},
	}
}

// FunctionalSSSP is a really-computing parallel single-source shortest
// paths: round-based Bellman-Ford with atomic distance relaxation.
type FunctionalSSSP struct {
	g    *graphgen.Graph
	src  int
	dist []uint32 // float32 bits, for atomic min via CAS
}

// NewFunctionalSSSP builds an SSSP instance over a w×h road network.
func NewFunctionalSSSP(w, h int, seed int64) (*FunctionalSSSP, error) {
	g, err := graphgen.RoadNetwork(w, h, 0.001, seed)
	if err != nil {
		return nil, err
	}
	return &FunctionalSSSP{g: g, src: 0}, nil
}

// Name implements Functional.
func (s *FunctionalSSSP) Name() string { return "SP" }

// Dist returns vertex v's computed distance (valid after Run).
func (s *FunctionalSSSP) Dist(v int) float32 {
	return math.Float32frombits(s.dist[v])
}

const infBits = uint32(0x7f800000) // +Inf in float32

// Run implements Functional: full-graph relaxation rounds until no
// distance improves. Distances are float32 bit patterns so atomic
// compare-and-swap implements atomic-min (IEEE 754 ordering matches
// integer ordering for non-negative floats).
func (s *FunctionalSSSP) Run(ex Executor) error {
	n := s.g.N
	s.dist = make([]uint32, n)
	for i := range s.dist {
		s.dist[i] = infBits
	}
	s.dist[s.src] = 0
	var changed atomic.Bool
	for {
		changed.Store(false)
		dist := s.dist
		g := s.g
		err := ex.ParallelFor(n, func(v int) {
			dv := math.Float32frombits(atomic.LoadUint32(&dist[v]))
			if math.IsInf(float64(dv), 1) {
				return
			}
			weights := g.NeighborWeights(v)
			for i, nb := range g.Neighbors(v) {
				cand := dv + weights[i]
				candBits := math.Float32bits(cand)
				for {
					cur := atomic.LoadUint32(&dist[nb])
					if candBits >= cur {
						break
					}
					if atomic.CompareAndSwapUint32(&dist[nb], cur, candBits) {
						changed.Store(true)
						break
					}
				}
			}
		})
		if err != nil {
			return err
		}
		if !changed.Load() {
			return nil
		}
	}
}

// Verify implements Functional: distances must satisfy the shortest-
// path optimality conditions (triangle inequality tight on a tree).
func (s *FunctionalSSSP) Verify() error {
	if s.dist == nil {
		return fmt.Errorf("sssp: Verify called before Run")
	}
	if s.Dist(s.src) != 0 {
		return fmt.Errorf("sssp: source distance %v, want 0", s.Dist(s.src))
	}
	for v := 0; v < s.g.N; v++ {
		dv := float64(s.Dist(v))
		weights := s.g.NeighborWeights(v)
		for i, nb := range s.g.Neighbors(v) {
			dn := float64(s.Dist(int(nb)))
			w := float64(weights[i])
			// No edge may offer an improvement: d(nb) ≤ d(v) + w.
			if dn > dv+w+1e-4 {
				return fmt.Errorf("sssp: edge %d->%d violates optimality: %v > %v + %v", v, nb, dn, dv, w)
			}
		}
	}
	return nil
}
