package workloads

import "testing"

func TestTabletSchedules(t *testing.T) {
	expected := map[string]struct {
		invocations int
		totalItems  int
	}{
		"MB": {1, 7680 * 6144},
		"SL": {1, 45_000_000},
		"BS": {2000, 2000 * 2_621_440},
		"MM": {1, (1024 / 16) * (1024 / 16)},
		"NB": {101, 101 * 1024},
		"RT": {1, 2048 * 2048},
		"SM": {100, 100 * 1950 * 1326},
	}
	for _, w := range ForPlatform("tablet") {
		want, ok := expected[w.Abbrev]
		if !ok {
			t.Fatalf("unexpected tablet workload %s", w.Abbrev)
		}
		invs, err := w.Schedule("tablet", 1)
		if err != nil {
			t.Fatalf("%s: %v", w.Abbrev, err)
		}
		if len(invs) != want.invocations {
			t.Errorf("%s: %d invocations, want %d", w.Abbrev, len(invs), want.invocations)
		}
		if got := TotalItems(invs); got != want.totalItems {
			t.Errorf("%s: %d total items, want %d (Table 1 tablet input)", w.Abbrev, got, want.totalItems)
		}
	}
}

func TestTabletInputsSmallerWhereTable1SaysSo(t *testing.T) {
	// The tablet's 250 MB shared-region limit forces smaller inputs for
	// SL, MM, NB (Table 1 column 4); MB, BS, SM keep or grow theirs,
	// and RT shrinks per-ray cost (225 vs 256 spheres) rather than
	// pixel count.
	smaller := map[string]bool{"SL": true, "MM": true, "NB": true}
	for ab := range smaller {
		w, _ := ByAbbrev(ab)
		d, err := w.Schedule("desktop", 1)
		if err != nil {
			t.Fatal(err)
		}
		tb, err := w.Schedule("tablet", 1)
		if err != nil {
			t.Fatal(err)
		}
		if TotalItems(tb) >= TotalItems(d) {
			t.Errorf("%s: tablet items %d should be below desktop %d", ab, TotalItems(tb), TotalItems(d))
		}
	}
	rt, _ := ByAbbrev("RT")
	d, _ := rt.Schedule("desktop", 1)
	tb, _ := rt.Schedule("tablet", 1)
	if tb[0].Kernel.Cost.FLOPs >= d[0].Kernel.Cost.FLOPs {
		t.Errorf("RT tablet per-ray FLOPs %v should be below desktop %v (225 vs 256 spheres)",
			tb[0].Kernel.Cost.FLOPs, d[0].Kernel.Cost.FLOPs)
	}
}

func TestMMTabletCostScalesWithDim(t *testing.T) {
	// The per-tile cost depends on the matrix dimension, so the tablet
	// (1024) and desktop (2048) kernels must differ.
	w, _ := ByAbbrev("MM")
	d, _ := w.Schedule("desktop", 1)
	tb, _ := w.Schedule("tablet", 1)
	if d[0].Kernel.Cost.FLOPs <= tb[0].Kernel.Cost.FLOPs {
		t.Errorf("desktop tile FLOPs %v should exceed tablet %v",
			d[0].Kernel.Cost.FLOPs, tb[0].Kernel.Cost.FLOPs)
	}
	if d[0].Kernel.Cost.FLOPs != 2*tb[0].Kernel.Cost.FLOPs {
		t.Errorf("2048-dim tile should cost exactly 2× the 1024-dim tile")
	}
}
