// Package workloads defines the paper's twelve benchmarks (Table 1):
// seven irregular (BarnesHut, BFS, Connected Components, Face Detect,
// Mandelbrot, SkipList, Shortest Path) and five regular (Blackscholes,
// Matrix Multiply, N-Body, Ray Tracer, Seismic).
//
// Each workload exists in two forms:
//
//   - a *timed schedule* — the sequence of kernel invocations (item
//     counts, per-item cost profiles, per-invocation irregularity) fed
//     to the platform simulator for the paper's experiments, with the
//     paper's input sizes; and
//   - a *functional implementation* — real Go code computing real
//     results at configurable scale, used by the examples and
//     correctness tests (the simulator models time and power; the
//     functional code proves the kernels are genuine parallel_for
//     bodies).
//
// Original inputs the paper used but we cannot ship (the DIMACS
// Western-USA road graph, the Solvay-1927 photograph) are replaced by
// synthetic equivalents with matching structure; see DESIGN.md.
package workloads

import (
	"fmt"
	"math/rand"

	"github.com/hetsched/eas/internal/engine"
	"github.com/hetsched/eas/internal/wclass"
	"github.com/hetsched/eas/internal/ws"
)

// Invocation is one timed kernel invocation of a workload.
type Invocation struct {
	Kernel engine.Kernel
	N      int
}

// Workload is one Table 1 benchmark.
type Workload struct {
	// Name and Abbrev identify the benchmark ("Connected Components",
	// "CC").
	Name, Abbrev string
	// Irregular marks input-dependent control flow (Table 1 col. 6).
	Irregular bool
	// Paper is the classification Table 1 reports on the desktop.
	Paper wclass.Category
	// PaperInvocations is the kernel invocation count Table 1 reports.
	PaperInvocations int
	// Inputs describes the input per platform name (Table 1 cols 3-4).
	Inputs map[string]string
	// Schedule builds the timed invocation sequence for a platform.
	// It returns an error for platforms the workload does not support
	// (five workloads do not build on the 32-bit tablet).
	Schedule func(platformName string, seed int64) ([]Invocation, error)
}

// SupportsPlatform reports whether the workload runs on the platform.
func (w Workload) SupportsPlatform(name string) bool {
	_, ok := w.Inputs[name]
	return ok
}

// TotalItems sums the invocation sizes of a schedule.
func TotalItems(schedule []Invocation) int {
	total := 0
	for _, inv := range schedule {
		total += inv.N
	}
	return total
}

// errUnsupported builds the standard unsupported-platform error.
func errUnsupported(abbrev, platformName string) error {
	return fmt.Errorf("workloads: %s does not run on %q (32-bit toolchain limitation in the paper; only desktop inputs exist)", abbrev, platformName)
}

// noise produces per-invocation device speed factors: regular
// workloads barely vary, irregular ones vary run to run. Factors are
// deterministic per (seed, invocation).
func noise(rng *rand.Rand, sigma float64) (cpuFactor, gpuFactor float64) {
	if sigma <= 0 {
		return 1, 1
	}
	c := 1 + sigma*rng.NormFloat64()
	g := 1 + sigma*rng.NormFloat64()
	return clampFactor(c), clampFactor(g)
}

func clampFactor(f float64) float64 {
	if f < 0.5 {
		return 0.5
	}
	if f > 1.5 {
		return 1.5
	}
	return f
}

// All returns the twelve workloads in Table 1 order.
func All() []Workload {
	return []Workload{
		BarnesHut(),
		BFS(),
		ConnectedComponents(),
		FaceDetect(),
		Mandelbrot(),
		SkipList(),
		ShortestPath(),
		Blackscholes(),
		MatrixMultiply(),
		NBody(),
		RayTracer(),
		Seismic(),
	}
}

// ByAbbrev returns the workload with the given abbreviation.
func ByAbbrev(ab string) (Workload, bool) {
	for _, w := range All() {
		if w.Abbrev == ab {
			return w, true
		}
	}
	return Workload{}, false
}

// ForPlatform returns the workloads that run on the named platform
// (all twelve on the desktop, seven on the tablet, as in the paper).
func ForPlatform(name string) []Workload {
	var out []Workload
	for _, w := range All() {
		if w.SupportsPlatform(name) {
			out = append(out, w)
		}
	}
	return out
}

// Executor abstracts "run this data-parallel loop": the functional
// workloads issue their rounds through it, so the same workload code
// runs on a plain thread pool, the mini-OpenCL queue, or the
// energy-aware runtime's hybrid ParallelFor.
type Executor interface {
	ParallelFor(n int, body func(i int)) error
}

// PoolExecutor adapts a work-stealing pool to the Executor interface —
// the plain multi-core CPU execution backend.
type PoolExecutor struct {
	Pool *ws.Pool
}

// ParallelFor implements Executor. A panic recovered inside the pool
// (a *ws.PanicError) propagates as the returned error.
func (p PoolExecutor) ParallelFor(n int, body func(i int)) error {
	if n < 0 {
		return fmt.Errorf("workloads: negative iteration count %d", n)
	}
	return p.Pool.ParallelFor(n, 0, body)
}

// SerialExecutor runs loops on the calling goroutine; useful for
// debugging and as a determinism reference.
type SerialExecutor struct{}

// ParallelFor implements Executor.
func (SerialExecutor) ParallelFor(n int, body func(i int)) error {
	for i := 0; i < n; i++ {
		body(i)
	}
	return nil
}

// Functional is a really-computing workload instance.
type Functional interface {
	// Name identifies the instance.
	Name() string
	// Run executes every parallel round through the executor.
	Run(ex Executor) error
	// Verify checks the computed results, returning nil on success.
	// It must be called after Run.
	Verify() error
}
