package workloads

import (
	"testing"

	"github.com/hetsched/eas/internal/wclass"
)

func TestRegistry(t *testing.T) {
	all := All()
	if len(all) != 12 {
		t.Fatalf("All() = %d workloads, want 12", len(all))
	}
	seen := map[string]bool{}
	irregular, tablet := 0, 0
	for _, w := range all {
		if seen[w.Abbrev] {
			t.Errorf("duplicate abbrev %s", w.Abbrev)
		}
		seen[w.Abbrev] = true
		if w.Irregular {
			irregular++
		}
		if w.SupportsPlatform("tablet") {
			tablet++
		}
		if !w.SupportsPlatform("desktop") {
			t.Errorf("%s must support the desktop", w.Abbrev)
		}
	}
	if irregular != 7 {
		t.Errorf("%d irregular workloads, want 7 (BH BFS CC FD MB SL SP)", irregular)
	}
	if tablet != 7 {
		t.Errorf("%d tablet workloads, want 7 (MB SL BS MM NB RT SM)", tablet)
	}
	if len(ForPlatform("tablet")) != 7 || len(ForPlatform("desktop")) != 12 {
		t.Error("ForPlatform counts wrong")
	}
}

func TestByAbbrev(t *testing.T) {
	w, ok := ByAbbrev("CC")
	if !ok || w.Name != "Connected Component" {
		t.Errorf("ByAbbrev(CC) = %+v, %v", w, ok)
	}
	if _, ok := ByAbbrev("XX"); ok {
		t.Error("unknown abbrev resolved")
	}
}

func TestSchedulesMatchTable1(t *testing.T) {
	for _, w := range All() {
		invs, err := w.Schedule("desktop", 1)
		if err != nil {
			t.Fatalf("%s: %v", w.Abbrev, err)
		}
		if len(invs) != w.PaperInvocations {
			t.Errorf("%s: %d invocations, want %d (Table 1)", w.Abbrev, len(invs), w.PaperInvocations)
		}
		for k, inv := range invs {
			if inv.N < 1 {
				t.Fatalf("%s invocation %d has N=%d", w.Abbrev, k, inv.N)
			}
			if err := inv.Kernel.Cost.Validate(); err != nil {
				t.Fatalf("%s invocation %d: %v", w.Abbrev, k, err)
			}
		}
		// Memory-bound classification of the schedule's cost profiles
		// must match the Table 1 column.
		mi := invs[0].Kernel.Cost.MemoryIntensity()
		if w.Paper.Memory && mi <= wclass.MemoryBoundThreshold {
			t.Errorf("%s: intensity %v but Table 1 says memory-bound", w.Abbrev, mi)
		}
		if !w.Paper.Memory && mi > wclass.MemoryBoundThreshold {
			t.Errorf("%s: intensity %v but Table 1 says compute-bound", w.Abbrev, mi)
		}
	}
}

func TestSchedulesDeterministic(t *testing.T) {
	for _, w := range All() {
		a, err := w.Schedule("desktop", 99)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := w.Schedule("desktop", 99)
		if len(a) != len(b) {
			t.Fatalf("%s: nondeterministic schedule length", w.Abbrev)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: invocation %d differs across same-seed builds", w.Abbrev, i)
			}
		}
	}
}

func TestUnsupportedPlatformErrors(t *testing.T) {
	for _, ab := range []string{"BH", "BFS", "CC", "FD", "SP"} {
		w, _ := ByAbbrev(ab)
		if _, err := w.Schedule("tablet", 1); err == nil {
			t.Errorf("%s should not build on the tablet", ab)
		}
	}
	w, _ := ByAbbrev("MB")
	if _, err := w.Schedule("mainframe", 1); err == nil {
		t.Error("unknown platform accepted")
	}
}

func TestTotalItems(t *testing.T) {
	w, _ := ByAbbrev("BFS")
	invs, err := w.Schedule("desktop", 1)
	if err != nil {
		t.Fatal(err)
	}
	total := TotalItems(invs)
	// The BFS schedule covers the 6.2M-vertex graph (±2% rounding).
	if total < 6_000_000 || total > 6_500_000 {
		t.Errorf("BFS total items = %d, want ≈6.2M", total)
	}
}

func TestCCDriftsTowardCPU(t *testing.T) {
	// The CC schedule must degrade GPU-relative efficiency over the
	// run — the mechanism behind the paper's observed EAS misprediction.
	w, _ := ByAbbrev("CC")
	invs, _ := w.Schedule("desktop", 1)
	head := invs[10].Kernel
	tail := invs[len(invs)-10].Kernel
	if tail.Cost.Divergence <= head.Cost.Divergence {
		t.Error("CC divergence should grow over the run")
	}
	// Late invocations shrink below GPU_PROFILE_SIZE (2240), starving
	// GPU occupancy.
	if invs[len(invs)-1].N >= 2240 {
		t.Errorf("CC tail invocations should be small, got %d", invs[len(invs)-1].N)
	}
	if invs[0].N != 6_200_000 {
		t.Errorf("CC head sweep = %d, want 6.2M", invs[0].N)
	}
}

func TestNoiseBounds(t *testing.T) {
	for _, w := range All() {
		invs, _ := w.Schedule("desktop", 5)
		for i, inv := range invs {
			k := inv.Kernel
			for _, f := range []float64{k.CPUSpeedFactor, k.GPUSpeedFactor} {
				if f < 0.5 || f > 1.5 {
					t.Fatalf("%s invocation %d: speed factor %v outside [0.5,1.5]", w.Abbrev, i, f)
				}
			}
		}
	}
}

func TestScheduleShapes(t *testing.T) {
	// BFS frontiers must ramp up and back down (road-network shape).
	bfs, _ := ByAbbrev("BFS")
	invs, _ := bfs.Schedule("desktop", 1)
	peak, peakAt := 0, 0
	for i, inv := range invs {
		if inv.N > peak {
			peak, peakAt = inv.N, i
		}
	}
	if peakAt < len(invs)/10 || peakAt > len(invs)*9/10 {
		t.Errorf("BFS peak frontier at invocation %d of %d; want interior", peakAt, len(invs))
	}
	if invs[0].N >= peak/10 || invs[len(invs)-1].N >= peak/10 {
		t.Errorf("BFS frontier ends (%d, %d) should be tiny vs peak %d",
			invs[0].N, invs[len(invs)-1].N, peak)
	}

	// CC sweeps must decay monotonically down to the fix-up floor.
	cc, _ := ByAbbrev("CC")
	ccInvs, _ := cc.Schedule("desktop", 1)
	for i := 1; i < len(ccInvs); i++ {
		if ccInvs[i].N > ccInvs[i-1].N {
			t.Fatalf("CC sweep %d grew: %d > %d", i, ccInvs[i].N, ccInvs[i-1].N)
		}
	}

	// FD stages shrink geometrically (survivors of the cascade).
	fd, _ := ByAbbrev("FD")
	fdInvs, _ := fd.Schedule("desktop", 1)
	if fdInvs[len(fdInvs)-1].N >= fdInvs[0].N/100 {
		t.Errorf("FD last stage %d should be ≪ first %d", fdInvs[len(fdInvs)-1].N, fdInvs[0].N)
	}
}
