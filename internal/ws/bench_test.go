package ws

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func BenchmarkDequePushPop(b *testing.B) {
	d := NewDeque()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.PushBottom(Range{Start: i, End: i + 1})
		d.PopBottom()
	}
}

func BenchmarkDequeSteal(b *testing.B) {
	d := NewDeque()
	for i := 0; i < b.N; i++ {
		d.PushBottom(Range{Start: i, End: i + 1})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Steal()
	}
}

func BenchmarkSharedCounterGrab(b *testing.B) {
	c := NewSharedCounter(1 << 62)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Grab(64)
		}
	})
}

func BenchmarkParallelForThroughput(b *testing.B) {
	p := NewPool(0)
	var sink atomic.Int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.ParallelFor(100000, 256, func(j int) {
			if j == 0 {
				sink.Add(1)
			}
		})
	}
}

// BenchmarkPoolContention measures aggregate loop throughput when 1, 4
// and 16 tenants run ParallelFor concurrently on one shared pool — the
// multi-tenant scaling curve the parking path is meant to protect
// (spinning idle workers collapse it by stealing cycles from tenants
// with real work).
func BenchmarkPoolContention(b *testing.B) {
	const n = 1 << 16
	for _, callers := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("callers=%d", callers), func(b *testing.B) {
			p := NewPool(0)
			var sink atomic.Int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				for c := 0; c < callers; c++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						p.ParallelFor(n, 256, func(j int) {
							if j == 0 {
								sink.Add(1)
							}
						})
					}()
				}
				wg.Wait()
			}
			b.StopTimer()
			items := float64(callers) * n * float64(b.N)
			b.ReportMetric(items/b.Elapsed().Seconds(), "items/s")
		})
	}
}
