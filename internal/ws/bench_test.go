package ws

import (
	"sync/atomic"
	"testing"
)

func BenchmarkDequePushPop(b *testing.B) {
	d := NewDeque()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.PushBottom(Range{Start: i, End: i + 1})
		d.PopBottom()
	}
}

func BenchmarkDequeSteal(b *testing.B) {
	d := NewDeque()
	for i := 0; i < b.N; i++ {
		d.PushBottom(Range{Start: i, End: i + 1})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Steal()
	}
}

func BenchmarkSharedCounterGrab(b *testing.B) {
	c := NewSharedCounter(1 << 62)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Grab(64)
		}
	})
}

func BenchmarkParallelForThroughput(b *testing.B) {
	p := NewPool(0)
	var sink atomic.Int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.ParallelFor(100000, 256, func(j int) {
			if j == 0 {
				sink.Add(1)
			}
		})
	}
}
