// Package ws implements the CPU-side work-stealing runtime the paper's
// scheduler executes parallel iterations with: a lock-free Chase-Lev
// deque per worker plus a pool that runs parallel_for bodies, with one
// designated slot for the GPU proxy thread's leftover work.
//
// The deque is the classic Chase-Lev algorithm (SPAA'05): the owner
// pushes and pops at the bottom without contention, thieves steal from
// the top with a CAS. Go's sync/atomic operations are sequentially
// consistent, which satisfies the algorithm's fencing requirements.
package ws

import "sync/atomic"

// Range is a half-open interval of loop iterations [Start, End).
type Range struct {
	Start, End int
}

// Len returns the number of iterations in the range.
func (r Range) Len() int { return r.End - r.Start }

// ring is a fixed-size circular buffer. Size is a power of two.
type ring struct {
	size int64
	mask int64
	buf  []Range
}

func newRing(size int64) *ring {
	return &ring{size: size, mask: size - 1, buf: make([]Range, size)}
}

func (r *ring) get(i int64) Range    { return r.buf[i&r.mask] }
func (r *ring) put(i int64, v Range) { r.buf[i&r.mask] = v }
func (r *ring) grow(b, t int64) *ring {
	nr := newRing(r.size * 2)
	for i := t; i < b; i++ {
		nr.put(i, r.get(i))
	}
	return nr
}

// Deque is a Chase-Lev work-stealing deque of Ranges. The zero value is
// not usable; construct with NewDeque. PushBottom and PopBottom may be
// called only by the owning worker; Steal may be called by any thread.
type Deque struct {
	top    atomic.Int64
	bottom atomic.Int64
	array  atomic.Pointer[ring]
}

// NewDeque returns an empty deque.
func NewDeque() *Deque {
	d := &Deque{}
	d.array.Store(newRing(64))
	return d
}

// PushBottom adds v at the owner's end.
func (d *Deque) PushBottom(v Range) {
	b := d.bottom.Load()
	t := d.top.Load()
	a := d.array.Load()
	if b-t >= a.size-1 {
		a = a.grow(b, t)
		d.array.Store(a)
	}
	a.put(b, v)
	d.bottom.Store(b + 1)
}

// PopBottom removes and returns the most recently pushed range. The
// second result is false when the deque is empty.
func (d *Deque) PopBottom() (Range, bool) {
	b := d.bottom.Load() - 1
	a := d.array.Load()
	d.bottom.Store(b)
	t := d.top.Load()
	if t > b {
		// Empty: restore bottom.
		d.bottom.Store(b + 1)
		return Range{}, false
	}
	v := a.get(b)
	if t == b {
		// Last element: race with thieves via CAS on top.
		won := d.top.CompareAndSwap(t, t+1)
		d.bottom.Store(b + 1)
		if !won {
			return Range{}, false
		}
		return v, true
	}
	return v, true
}

// Steal removes and returns the oldest range. The second result is
// false when the deque is empty or the steal lost a race.
func (d *Deque) Steal() (Range, bool) {
	t := d.top.Load()
	b := d.bottom.Load()
	if t >= b {
		return Range{}, false
	}
	a := d.array.Load()
	v := a.get(t)
	if !d.top.CompareAndSwap(t, t+1) {
		return Range{}, false
	}
	return v, true
}

// maxStealBatch caps how many chunks one StealHalf call transfers. The
// cap bounds the thief's time inside the steal loop (each chunk is its
// own CAS) and keeps a single steal from emptying a large victim into
// one thief, which would defeat the distribution the batch exists for.
const maxStealBatch = 16

// StealHalf claims up to half of the victim's queued chunks in one
// call: the first claimed chunk is returned for immediate execution and
// the remainder are pushed onto into, which MUST be the calling
// thief's own deque (PushBottom is owner-only). extra is the number of
// chunks transferred to into beyond the returned one.
//
// Chase-Lev has no safe multi-item claim: a single CAS moving top by k
// can race a concurrent PopBottom, which takes non-last items without
// any CAS, double-executing work. StealHalf therefore loops the
// single-item Steal CAS — each claim individually linearizable — and
// stops early the moment a claim fails, so it is exactly as correct as
// k sequential Steals while amortizing the victim-selection and
// wake-propagation overhead across the batch.
func (d *Deque) StealHalf(into *Deque) (first Range, extra int, ok bool) {
	t := d.top.Load()
	b := d.bottom.Load()
	size := b - t
	if size <= 0 {
		return Range{}, 0, false
	}
	want := (size + 1) / 2
	if want > maxStealBatch {
		want = maxStealBatch
	}
	first, ok = d.Steal()
	if !ok {
		return Range{}, 0, false
	}
	for int64(extra)+1 < want {
		r, more := d.Steal()
		if !more {
			break
		}
		into.PushBottom(r)
		extra++
	}
	return first, extra, true
}

// Size returns a linearizable-enough estimate of the number of queued
// ranges (for monitoring; exactness is not guaranteed under races).
func (d *Deque) Size() int {
	b := d.bottom.Load()
	t := d.top.Load()
	if b < t {
		return 0
	}
	return int(b - t)
}
