package ws

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestParallelForRecoversPanic(t *testing.T) {
	p := NewPool(4)
	const n = 10000
	var ran atomic.Int64
	err := p.ParallelFor(n, 64, func(i int) {
		if i == 4321 {
			panic("kernel bug")
		}
		ran.Add(1)
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Index != 4321 {
		t.Errorf("panic index = %d, want 4321", pe.Index)
	}
	if pe.Value != "kernel bug" {
		t.Errorf("panic value = %v", pe.Value)
	}
	if len(pe.Stack) == 0 || !strings.Contains(err.Error(), "kernel bug") {
		t.Errorf("panic error missing stack or message: %v", err)
	}
	// The pool drained: workers stopped without running everything,
	// and the pool is immediately reusable.
	if ran.Load() >= n {
		t.Errorf("all %d iterations ran despite panic", n)
	}
	var count atomic.Int64
	if err := p.ParallelFor(1000, 16, func(int) { count.Add(1) }); err != nil {
		t.Fatalf("pool unusable after panic: %v", err)
	}
	if count.Load() != 1000 {
		t.Errorf("post-panic loop ran %d iterations, want 1000", count.Load())
	}
}

func TestParallelForPanicInInlinePath(t *testing.T) {
	p := NewPool(4)
	err := p.ParallelFor(5, 100, func(i int) { // below grain: inline path
		if i == 3 {
			panic("small loop bug")
		}
	})
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Index != 3 {
		t.Fatalf("inline path err = %v, want *PanicError at 3", err)
	}
}

func TestParallelRangeRecoversPanic(t *testing.T) {
	p := NewPool(4)
	err := p.ParallelRange(10000, 128, func(r Range) {
		if r.Start >= 5000 {
			panic("chunk bug")
		}
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Index < 5000 {
		t.Errorf("panic attributed to index %d, want >= 5000", pe.Index)
	}
}

func TestParallelForCtxCancelledBeforeStart(t *testing.T) {
	p := NewPool(4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	err := p.ParallelForCtx(ctx, 1000, 16, func(int) { ran.Add(1) })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran.Load() != 0 {
		t.Errorf("%d iterations ran on a pre-cancelled context", ran.Load())
	}
}

func TestParallelForCtxReturnsPromptlyOnCancel(t *testing.T) {
	p := NewPool(4)
	ctx, cancel := context.WithCancel(context.Background())
	gate := make(chan struct{})
	var entered atomic.Int64
	done := make(chan error, 1)
	go func() {
		// Every chunk blocks on the gate, so the loop can only finish
		// via cancellation.
		done <- p.ParallelForCtx(ctx, 100000, 256, func(i int) {
			entered.Add(1)
			<-gate
		})
	}()
	for entered.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ParallelForCtx did not return promptly after cancel")
	}
	close(gate) // release the blocked background workers
}

func TestParallelForCtxCompletesWithoutCancel(t *testing.T) {
	p := NewPool(4)
	var sum atomic.Int64
	err := p.ParallelForCtx(context.Background(), 10000, 64, func(i int) {
		sum.Add(int64(i))
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(10000) * 9999 / 2; sum.Load() != want {
		t.Errorf("sum = %d, want %d", sum.Load(), want)
	}
}
