//go:build linux || darwin

package ws

import (
	"sync/atomic"
	"syscall"
	"testing"
	"time"
)

// processCPU returns the process's user+system CPU time.
func processCPU(t testing.TB) time.Duration {
	t.Helper()
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		t.Fatalf("getrusage: %v", err)
	}
	return time.Duration(ru.Utime.Nano() + ru.Stime.Nano())
}

// TestIdleWorkersPark pins the energy story of the parking path: while
// one straggler chunk sleeps, the other seven workers must park (block
// on the pool semaphore) rather than spin, so the whole wait costs a
// small fraction of one core. Before parking, the idle workers burned
// ~(workers-1) cores in a Gosched loop for the full wait — on this
// scenario at least one full core-second of CPU per second of wait —
// so the 10x-tighter bound below fails the spin implementation on any
// machine with 2+ cores.
func TestIdleWorkersPark(t *testing.T) {
	const (
		workers  = 8
		straggle = 400 * time.Millisecond
		budget   = 120 * time.Millisecond // >=10x below the spin cost
	)
	p := NewPool(workers)
	var executed atomic.Int64
	start := processCPU(t)
	err := p.ParallelFor(workers, 1, func(i int) {
		if i == 0 {
			time.Sleep(straggle)
		}
		executed.Add(1)
	})
	spent := processCPU(t) - start
	if err != nil {
		t.Fatal(err)
	}
	if executed.Load() != workers {
		t.Fatalf("executed %d iterations, want %d", executed.Load(), workers)
	}
	if spent > budget {
		t.Errorf("idle wait burned %v of CPU time (budget %v): workers are spinning, not parking", spent, budget)
	}
}

// BenchmarkIdleWaitCPUTime measures the CPU cost of an idle wait — the
// acceptance metric for the parking path. Each op is a loop whose only
// real work is one 50 ms straggler chunk; cpu-ms/op reports what the
// other seven workers burned while waiting (spin implementation:
// ~350 cpu-ms/op on 8 cores; parking: low single digits).
func BenchmarkIdleWaitCPUTime(b *testing.B) {
	const straggle = 50 * time.Millisecond
	p := NewPool(8)
	start := processCPU(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.ParallelFor(8, 1, func(j int) {
			if j == 0 {
				time.Sleep(straggle)
			}
		})
	}
	b.StopTimer()
	spent := processCPU(b) - start
	b.ReportMetric(float64(spent.Milliseconds())/float64(b.N), "cpu-ms/op")
}
