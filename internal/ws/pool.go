package ws

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultGrain is the default chunk size for splitting iteration spaces.
const DefaultGrain = 256

// Pool executes data-parallel loops over a fixed set of worker
// goroutines using work stealing. A Pool may be reused for many loops;
// it is safe for sequential reuse but a single loop runs at a time.
type Pool struct {
	workers int
}

// NewPool returns a pool of n workers; n <= 0 selects GOMAXPROCS.
func NewPool(n int) *Pool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: n}
}

// Workers returns the pool's worker count.
func (p *Pool) Workers() int { return p.workers }

// ParallelFor executes body(i) for every i in [0, n) using all workers.
// Iterations may run in any order and concurrently; the body must be
// safe for concurrent invocation on distinct indices. grain <= 0 uses
// DefaultGrain.
func (p *Pool) ParallelFor(n int, grain int, body func(i int)) {
	p.ParallelRange(n, grain, func(r Range) {
		for i := r.Start; i < r.End; i++ {
			body(i)
		}
	})
}

// ParallelRange is ParallelFor at chunk granularity: body receives
// whole ranges, which lets callers amortize per-chunk setup.
func (p *Pool) ParallelRange(n int, grain int, body func(r Range)) {
	if n <= 0 {
		return
	}
	if grain <= 0 {
		grain = DefaultGrain
	}
	if n <= grain || p.workers == 1 {
		body(Range{Start: 0, End: n})
		return
	}

	// Seed each worker's deque with an equal slice of the iteration
	// space, itself split into grain-sized chunks.
	deques := make([]*Deque, p.workers)
	per := (n + p.workers - 1) / p.workers
	for w := 0; w < p.workers; w++ {
		deques[w] = NewDeque()
		lo := w * per
		hi := lo + per
		if hi > n {
			hi = n
		}
		for s := lo; s < hi; s += grain {
			e := s + grain
			if e > hi {
				e = hi
			}
			deques[w].PushBottom(Range{Start: s, End: e})
		}
	}

	var wg sync.WaitGroup
	var remaining atomic.Int64
	remaining.Store(int64(n))
	for w := 0; w < p.workers; w++ {
		wg.Add(1)
		go func(self int) {
			defer wg.Done()
			rng := uint64(self)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
			for remaining.Load() > 0 {
				r, ok := deques[self].PopBottom()
				if !ok {
					// Steal from a pseudo-random victim.
					rng ^= rng << 13
					rng ^= rng >> 7
					rng ^= rng << 17
					victim := int(rng % uint64(p.workers))
					if victim == self {
						victim = (victim + 1) % p.workers
					}
					r, ok = deques[victim].Steal()
					if !ok {
						// Nothing to steal right now; yield and retry
						// until the loop is globally done.
						runtime.Gosched()
						continue
					}
				}
				body(r)
				remaining.Add(int64(-r.Len()))
			}
		}(w)
	}
	wg.Wait()
}

// SharedCounter is the atomically drained work pool the paper's online
// profiling uses: CPU workers grab chunks by atomic decrement while the
// GPU proxy carves off its profile chunk from the same counter.
type SharedCounter struct {
	next  atomic.Int64
	limit int64
}

// NewSharedCounter returns a counter over the iteration space [0, n).
func NewSharedCounter(n int) *SharedCounter {
	if n < 0 {
		panic(fmt.Sprintf("ws: negative iteration count %d", n))
	}
	return &SharedCounter{limit: int64(n)}
}

// Grab atomically claims up to k iterations, returning the claimed
// range; ok is false when the counter is exhausted.
func (c *SharedCounter) Grab(k int) (Range, bool) {
	if k <= 0 {
		return Range{}, false
	}
	for {
		cur := c.next.Load()
		if cur >= c.limit {
			return Range{}, false
		}
		end := cur + int64(k)
		if end > c.limit {
			end = c.limit
		}
		if c.next.CompareAndSwap(cur, end) {
			return Range{Start: int(cur), End: int(end)}, true
		}
	}
}

// Remaining returns the number of unclaimed iterations.
func (c *SharedCounter) Remaining() int {
	r := c.limit - c.next.Load()
	if r < 0 {
		return 0
	}
	return int(r)
}
