package ws

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// DefaultGrain is the default chunk size for splitting iteration spaces.
const DefaultGrain = 256

// PanicError is a recovered panic from a kernel body running on the
// pool. The panicking worker converts it to an error, the remaining
// workers drain cleanly, and the loop returns it — a misbehaving
// kernel must not take down the scheduling runtime.
type PanicError struct {
	// Index is the iteration index whose body panicked (for range-level
	// loops, the first index of the panicking chunk).
	Index int
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("ws: kernel body panicked at index %d: %v", e.Index, e.Value)
}

// Pool executes data-parallel loops over a fixed set of worker
// goroutines using work stealing. A Pool may be reused for many loops;
// it is safe for sequential reuse but a single loop runs at a time.
type Pool struct {
	workers int
}

// NewPool returns a pool of n workers; n <= 0 selects GOMAXPROCS.
func NewPool(n int) *Pool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: n}
}

// Workers returns the pool's worker count.
func (p *Pool) Workers() int { return p.workers }

// ParallelFor executes body(i) for every i in [0, n) using all workers.
// Iterations may run in any order and concurrently; the body must be
// safe for concurrent invocation on distinct indices. grain <= 0 uses
// DefaultGrain. A panicking body is recovered and returned as a
// *PanicError after the other workers drain.
func (p *Pool) ParallelFor(n int, grain int, body func(i int)) error {
	return p.ParallelForCtx(context.Background(), n, grain, body)
}

// ParallelForCtx is ParallelFor with cancellation: when ctx is
// cancelled the loop stops handing out chunks and returns ctx.Err()
// promptly. Chunks already inside body keep running to completion in
// the background (bodies are not preemptible), so a cancelled loop may
// still execute a bounded amount of trailing work.
func (p *Pool) ParallelForCtx(ctx context.Context, n int, grain int, body func(i int)) error {
	return p.run(ctx, n, grain, func(r Range) error {
		return runIndexed(body, r)
	})
}

// ParallelRange is ParallelFor at chunk granularity: body receives
// whole ranges, which lets callers amortize per-chunk setup.
func (p *Pool) ParallelRange(n int, grain int, body func(r Range)) error {
	return p.ParallelRangeCtx(context.Background(), n, grain, body)
}

// ParallelRangeCtx is ParallelRange with cancellation (see
// ParallelForCtx for the semantics).
func (p *Pool) ParallelRangeCtx(ctx context.Context, n int, grain int, body func(r Range)) error {
	return p.run(ctx, n, grain, func(r Range) error {
		return runRange(body, r)
	})
}

// runIndexed executes body over r item-by-item, converting a panic to
// a *PanicError carrying the exact iteration index. One deferred
// recover per chunk keeps the hot loop free of per-item overhead.
func runIndexed(body func(int), r Range) (err error) {
	i := r.Start
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Index: i, Value: v, Stack: debug.Stack()}
		}
	}()
	for ; i < r.End; i++ {
		body(i)
	}
	return nil
}

// runRange executes a chunk body, attributing a panic to the chunk's
// first index (the pool cannot see inside the caller's chunk loop).
func runRange(body func(Range), r Range) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Index: r.Start, Value: v, Stack: debug.Stack()}
		}
	}()
	body(r)
	return nil
}

// run is the shared work-stealing loop. exec runs one chunk and
// reports a recovered panic as an error; the first error stops all
// workers (they finish their current chunk, then exit without taking
// more work) and is returned after the pool drains.
func (p *Pool) run(ctx context.Context, n int, grain int, exec func(r Range) error) error {
	if n <= 0 {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if grain <= 0 {
		grain = DefaultGrain
	}
	cancelled := ctx.Done()
	if cancelled == nil && (n <= grain || p.workers == 1) {
		// Uncancellable small or single-worker loop: run inline. A
		// cancellable loop always takes the goroutine path below, so
		// the caller gets a prompt return even if a body blocks.
		return exec(Range{Start: 0, End: n})
	}

	// Seed each worker's deque with an equal slice of the iteration
	// space, itself split into grain-sized chunks.
	deques := make([]*Deque, p.workers)
	per := (n + p.workers - 1) / p.workers
	for w := 0; w < p.workers; w++ {
		deques[w] = NewDeque()
		lo := w * per
		hi := lo + per
		if hi > n {
			hi = n
		}
		for s := lo; s < hi; s += grain {
			e := s + grain
			if e > hi {
				e = hi
			}
			deques[w].PushBottom(Range{Start: s, End: e})
		}
	}

	var (
		wg        sync.WaitGroup
		remaining atomic.Int64
		stop      atomic.Bool
		errOnce   sync.Once
		firstErr  error
	)
	remaining.Store(int64(n))
	for w := 0; w < p.workers; w++ {
		wg.Add(1)
		go func(self int) {
			defer wg.Done()
			rng := uint64(self)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
			for remaining.Load() > 0 && !stop.Load() {
				r, ok := deques[self].PopBottom()
				if !ok {
					// Steal from a pseudo-random victim.
					rng ^= rng << 13
					rng ^= rng >> 7
					rng ^= rng << 17
					victim := int(rng % uint64(p.workers))
					if victim == self {
						victim = (victim + 1) % p.workers
					}
					r, ok = deques[victim].Steal()
					if !ok {
						// Nothing to steal right now; yield and retry
						// until the loop is globally done or stopped.
						runtime.Gosched()
						continue
					}
				}
				if err := exec(r); err != nil {
					errOnce.Do(func() { firstErr = err })
					stop.Store(true)
					return
				}
				remaining.Add(int64(-r.Len()))
			}
		}(w)
	}

	finished := make(chan struct{})
	go func() {
		wg.Wait()
		close(finished)
	}()
	select {
	case <-finished:
	case <-cancelled:
		// Return promptly; workers observe stop at their next chunk
		// boundary and drain in the background.
		stop.Store(true)
		select {
		case <-finished:
			// Workers happened to finish anyway; fall through to report
			// a body error if one raced with the cancellation.
		default:
			return ctx.Err()
		}
	}
	// firstErr is safely published: the writing worker set it before
	// wg.Done, and finished closing orders that before this read.
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// SharedCounter is the atomically drained work pool the paper's online
// profiling uses: CPU workers grab chunks by atomic decrement while the
// GPU proxy carves off its profile chunk from the same counter.
type SharedCounter struct {
	next  atomic.Int64
	limit int64
}

// NewSharedCounter returns a counter over the iteration space [0, n).
func NewSharedCounter(n int) *SharedCounter {
	if n < 0 {
		panic(fmt.Sprintf("ws: negative iteration count %d", n))
	}
	return &SharedCounter{limit: int64(n)}
}

// Grab atomically claims up to k iterations, returning the claimed
// range; ok is false when the counter is exhausted.
func (c *SharedCounter) Grab(k int) (Range, bool) {
	if k <= 0 {
		return Range{}, false
	}
	for {
		cur := c.next.Load()
		if cur >= c.limit {
			return Range{}, false
		}
		end := cur + int64(k)
		if end > c.limit {
			end = c.limit
		}
		if c.next.CompareAndSwap(cur, end) {
			return Range{Start: int(cur), End: int(end)}, true
		}
	}
}

// Remaining returns the number of unclaimed iterations.
func (c *SharedCounter) Remaining() int {
	r := c.limit - c.next.Load()
	if r < 0 {
		return 0
	}
	return int(r)
}
