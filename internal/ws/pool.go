package ws

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// DefaultGrain is the default chunk size for splitting iteration spaces.
const DefaultGrain = 256

// PanicError is a recovered panic from a kernel body running on the
// pool. The panicking worker converts it to an error, the remaining
// workers drain cleanly, and the loop returns it — a misbehaving
// kernel must not take down the scheduling runtime.
type PanicError struct {
	// Index is the iteration index whose body panicked (for range-level
	// loops, the first index of the panicking chunk).
	Index int
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("ws: kernel body panicked at index %d: %v", e.Index, e.Value)
}

// Pool executes data-parallel loops over n worker goroutines per loop
// using work stealing. A Pool is safe for concurrent use: any number
// of loops may run on it at once (each loop gets its own deques and
// workers; the pool-level parker is shared). Workers that run out of
// stealable work spin briefly and then park on the pool's semaphore,
// so idle workers — whether waiting out a long straggler chunk in
// their own loop or belonging to a quiet tenant in a busy process —
// cost ~zero CPU instead of burning a core in a Gosched loop. That is
// both a throughput fix (spinners steal cycles from workers with real
// work) and an energy-accounting one: an energy-aware runtime must not
// itself convert idleness into full-core activity.
type Pool struct {
	workers int
	idle    parker

	// stealsBy holds one cache-line-padded steal counter per worker
	// slot. Steals are the hottest counter — every successful claim from
	// a foreign deque bumps one — so sharing a single atomic across
	// workers would put every thief on the same cache line. Each worker
	// updates only its own padded slot and Stats sums them on demand.
	// (Concurrent loops on one pool share slots by worker index; that
	// cross-loop overlap is rare and still one writer per line at a
	// time in the common case.)
	stealsBy []paddedUint64

	// Observability counters (lifetime, monotonic). Parks and wakes sit
	// behind the parker's mutex anyway — an extra shared atomic add per
	// idle episode is noise, so they stay unsharded.
	parks atomic.Uint64 // times a worker blocked on the idle semaphore
	wakes atomic.Uint64 // wakeups delivered to parked workers
}

// paddedUint64 is an atomic counter padded out to a cache line so
// adjacent slots in a slice never false-share.
type paddedUint64 struct {
	n atomic.Uint64
	_ [56]byte
}

// PoolStats is a snapshot of the pool's lifetime activity counters.
type PoolStats struct {
	// Steals counts chunks claimed from another worker's deque,
	// including the extras a batched StealHalf transfers into the
	// thief's own deque (counted at transfer time, whichever worker
	// ultimately executes them).
	Steals uint64
	// Parks counts idle episodes that exhausted the spin budget and
	// blocked on the pool semaphore.
	Parks uint64
	// Wakes counts wakeups delivered to parked workers.
	Wakes uint64
}

// Stats returns a snapshot of the pool's activity counters. It is safe
// to call from any goroutine, including while loops are in flight.
func (p *Pool) Stats() PoolStats {
	var steals uint64
	for i := range p.stealsBy {
		steals += p.stealsBy[i].n.Load()
	}
	return PoolStats{
		Steals: steals,
		Parks:  p.parks.Load(),
		Wakes:  p.wakes.Load(),
	}
}

// NewPool returns a pool of n workers; n <= 0 selects GOMAXPROCS.
func NewPool(n int) *Pool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: n, stealsBy: make([]paddedUint64, n)}
}

// parker is the pool's idle-worker semaphore. A worker that finds no
// work registers a wake channel with prepare, rechecks its loop's
// state (mandatory — skipping the recheck loses wakeups), and then
// blocks on the channel; wakers close channels via wakeOne/wakeAll.
// The parker is shared by all loops running on the pool: a wakeup may
// reach a worker of a different loop, which simply rechecks its own
// state and re-parks, so cross-loop wakeups are harmless and every
// loop's own terminator always wakes its own parked workers.
type parker struct {
	mu      sync.Mutex
	waiters []chan struct{}
}

// prepare registers the caller for wakeup. The caller must either
// block on the returned channel or call cancel on it.
func (p *parker) prepare() chan struct{} {
	ch := make(chan struct{})
	p.mu.Lock()
	p.waiters = append(p.waiters, ch)
	p.mu.Unlock()
	return ch
}

// cancel deregisters a prepared channel after the recheck found work.
// If a waker already consumed the registration the signal is simply
// dropped — the caller is awake by definition.
func (p *parker) cancel(ch chan struct{}) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i, c := range p.waiters {
		if c == ch {
			p.waiters = append(p.waiters[:i], p.waiters[i+1:]...)
			return
		}
	}
}

// wakeOne unparks the longest-parked worker, reporting whether one was
// waiting.
func (p *parker) wakeOne() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.waiters) > 0 {
		close(p.waiters[0])
		p.waiters = p.waiters[1:]
		return true
	}
	return false
}

// wakeAll unparks every parked worker, returning how many there were.
func (p *parker) wakeAll() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := len(p.waiters)
	for _, c := range p.waiters {
		close(c)
	}
	p.waiters = nil
	return n
}

// wakeOne/wakeAll wrappers that keep the wake counter honest.
func (p *Pool) wakeOne() {
	if p.idle.wakeOne() {
		p.wakes.Add(1)
	}
}

func (p *Pool) wakeAll() {
	if n := p.idle.wakeAll(); n > 0 {
		p.wakes.Add(uint64(n))
	}
}

// Workers returns the pool's worker count.
func (p *Pool) Workers() int { return p.workers }

// ParallelFor executes body(i) for every i in [0, n) using all workers.
// Iterations may run in any order and concurrently; the body must be
// safe for concurrent invocation on distinct indices. grain <= 0 uses
// DefaultGrain. A panicking body is recovered and returned as a
// *PanicError after the other workers drain.
func (p *Pool) ParallelFor(n int, grain int, body func(i int)) error {
	return p.ParallelForCtx(context.Background(), n, grain, body)
}

// ParallelForCtx is ParallelFor with cancellation: when ctx is
// cancelled the loop stops handing out chunks and returns ctx.Err()
// promptly. Chunks already inside body keep running to completion in
// the background (bodies are not preemptible), so a cancelled loop may
// still execute a bounded amount of trailing work. A loop that has
// already executed all n iterations when the cancellation lands
// returns nil (or the body's error), never a spurious ctx.Err().
func (p *Pool) ParallelForCtx(ctx context.Context, n int, grain int, body func(i int)) error {
	return p.run(ctx, n, grain, func(r Range) error {
		return runIndexed(body, r)
	})
}

// ParallelRange is ParallelFor at chunk granularity: body receives
// whole ranges, which lets callers amortize per-chunk setup.
func (p *Pool) ParallelRange(n int, grain int, body func(r Range)) error {
	return p.ParallelRangeCtx(context.Background(), n, grain, body)
}

// ParallelRangeCtx is ParallelRange with cancellation (see
// ParallelForCtx for the semantics).
func (p *Pool) ParallelRangeCtx(ctx context.Context, n int, grain int, body func(r Range)) error {
	return p.run(ctx, n, grain, func(r Range) error {
		return runRange(body, r)
	})
}

// runIndexed executes body over r item-by-item, converting a panic to
// a *PanicError carrying the exact iteration index. One deferred
// recover per chunk keeps the hot loop free of per-item overhead.
func runIndexed(body func(int), r Range) (err error) {
	i := r.Start
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Index: i, Value: v, Stack: debug.Stack()}
		}
	}()
	for ; i < r.End; i++ {
		body(i)
	}
	return nil
}

// runRange executes a chunk body, attributing a panic to the chunk's
// first index (the pool cannot see inside the caller's chunk loop).
func runRange(body func(Range), r Range) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Index: r.Start, Value: v, Stack: debug.Stack()}
		}
	}()
	body(r)
	return nil
}

// spinSweeps is how many full steal sweeps an idle worker performs
// (yielding between sweeps) before parking on the pool semaphore. A
// small budget covers the common case — a chunk frees up within
// microseconds — without letting idle workers own a core.
const spinSweeps = 4

// run is the shared work-stealing loop. exec runs one chunk and
// reports a recovered panic as an error; the first error stops all
// workers (they finish their current chunk, then exit without taking
// more work) and is returned after the pool drains.
//
// Idle workers do not busy-wait: after a bounded spin of steal sweeps
// they park on the pool's semaphore and are woken when a peer claims a
// chunk whose deque still holds more (work propagation), or when the
// loop terminates (drained, body error, or cancellation). All chunks
// are seeded by PushBottom before the workers start, so a parked
// worker that observed every deque empty only ever needs the
// termination wakeup.
func (p *Pool) run(ctx context.Context, n int, grain int, exec func(r Range) error) error {
	if n <= 0 {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if grain <= 0 {
		grain = DefaultGrain
	}
	cancelled := ctx.Done()
	if cancelled == nil && (n <= grain || p.workers == 1) {
		// Uncancellable small or single-worker loop: run inline. A
		// cancellable loop always takes the goroutine path below, so
		// the caller gets a prompt return even if a body blocks.
		return exec(Range{Start: 0, End: n})
	}

	// Seed each worker's deque with an equal slice of the iteration
	// space, itself split into grain-sized chunks.
	deques := make([]*Deque, p.workers)
	per := (n + p.workers - 1) / p.workers
	for w := 0; w < p.workers; w++ {
		deques[w] = NewDeque()
		lo := w * per
		hi := lo + per
		if hi > n {
			hi = n
		}
		for s := lo; s < hi; s += grain {
			e := s + grain
			if e > hi {
				e = hi
			}
			deques[w].PushBottom(Range{Start: s, End: e})
		}
	}

	var (
		wg        sync.WaitGroup
		remaining atomic.Int64
		stop      atomic.Bool
		errOnce   sync.Once
		firstErr  error
	)
	remaining.Store(int64(n))
	anyQueued := func() bool {
		for _, d := range deques {
			if d.Size() > 0 {
				return true
			}
		}
		return false
	}
	for w := 0; w < p.workers; w++ {
		wg.Add(1)
		go func(self int) {
			defer wg.Done()
			rng := uint64(self)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
			idle := 0
			for remaining.Load() > 0 && !stop.Load() {
				r, ok := deques[self].PopBottom()
				src := self
				extra := 0
				if !ok {
					// Steal sweep: start at a pseudo-random victim and walk
					// the workers with a per-sweep stride coprime to the
					// worker count, so concurrent thieves fan out across
					// distinct victims instead of converging on the same
					// deque in the same order. A hit batch-steals half the
					// victim's queue: the first chunk runs immediately and
					// the extras land in this worker's own deque, where
					// further thieves can redistribute them.
					rng ^= rng << 13
					rng ^= rng >> 7
					rng ^= rng << 17
					victim := int(rng % uint64(p.workers))
					stride := coprimeStride(rng>>32, p.workers)
					for i := 0; i < p.workers && !ok; i++ {
						if victim != self {
							r, extra, ok = deques[victim].StealHalf(deques[self])
							src = victim
						}
						if !ok {
							victim += stride
							if victim >= p.workers {
								victim -= p.workers
							}
						}
					}
				}
				if !ok {
					idle++
					if idle < spinSweeps {
						runtime.Gosched()
						continue
					}
					// Out of spin budget: park until terminated or new
					// stealable work is signalled. The recheck between
					// prepare and the blocking receive closes the race
					// with a concurrent waker.
					wake := p.idle.prepare()
					if stop.Load() || remaining.Load() <= 0 || anyQueued() {
						p.idle.cancel(wake)
					} else {
						p.parks.Add(1)
						<-wake
					}
					idle = 0
					continue
				}
				idle = 0
				if src != self {
					p.stealsBy[self].n.Add(uint64(1 + extra))
				}
				// Work propagation: the batch left stealable chunks in
				// this worker's deque, or the victim still has more —
				// either way a parked peer could be helping.
				if extra > 0 || deques[src].Size() > 0 {
					p.wakeOne()
				}
				if err := exec(r); err != nil {
					errOnce.Do(func() { firstErr = err })
					stop.Store(true)
					p.wakeAll()
					return
				}
				if remaining.Add(int64(-r.Len())) <= 0 {
					p.wakeAll()
					return
				}
			}
		}(w)
	}

	finished := make(chan struct{})
	go func() {
		wg.Wait()
		close(finished)
	}()
	select {
	case <-finished:
	case <-cancelled:
		// Return promptly; workers observe stop at their next chunk
		// boundary and drain in the background.
		stop.Store(true)
		p.wakeAll()
		select {
		case <-finished:
			// Workers happened to finish anyway; fall through to report
			// the loop's true outcome.
		default:
			if remaining.Load() <= 0 {
				// Completion won the race: every iteration executed, so
				// the caller gets the drained loop's nil, not a spurious
				// ctx.Err(). (A body error is impossible here — an
				// erroring chunk never decrements remaining.)
				return nil
			}
			return ctx.Err()
		}
	}
	// firstErr is safely published: the writing worker set it before
	// wg.Done, and finished closing orders that before this read.
	if firstErr != nil {
		return firstErr
	}
	if remaining.Load() <= 0 {
		// Fully drained: success even if ctx was cancelled in the same
		// instant — a completed loop never reports cancellation.
		return nil
	}
	return ctx.Err()
}

// coprimeStride derives a victim-sweep stride in [1, n) coprime to n
// from the seed bits, so a sweep of n probes visits every worker
// exactly once while different thieves (different seeds) walk the
// workers in different orders.
func coprimeStride(seed uint64, n int) int {
	if n <= 2 {
		return 1
	}
	s := 1 + int(seed%uint64(n-1))
	for gcd(s, n) != 1 {
		s++
		if s >= n {
			s = 1
		}
	}
	return s
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// SharedCounter is the atomically drained work pool the paper's online
// profiling uses: CPU workers grab chunks by atomic decrement while the
// GPU proxy carves off its profile chunk from the same counter.
type SharedCounter struct {
	next  atomic.Int64
	limit int64
}

// NewSharedCounter returns a counter over the iteration space [0, n).
func NewSharedCounter(n int) *SharedCounter {
	if n < 0 {
		panic(fmt.Sprintf("ws: negative iteration count %d", n))
	}
	return &SharedCounter{limit: int64(n)}
}

// Grab atomically claims up to k iterations, returning the claimed
// range; ok is false when the counter is exhausted.
func (c *SharedCounter) Grab(k int) (Range, bool) {
	if k <= 0 {
		return Range{}, false
	}
	for {
		cur := c.next.Load()
		if cur >= c.limit {
			return Range{}, false
		}
		end := cur + int64(k)
		if end > c.limit {
			end = c.limit
		}
		if c.next.CompareAndSwap(cur, end) {
			return Range{Start: int(cur), End: int(end)}, true
		}
	}
}

// Remaining returns the number of unclaimed iterations.
func (c *SharedCounter) Remaining() int {
	r := c.limit - c.next.Load()
	if r < 0 {
		return 0
	}
	return int(r)
}
