package ws

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestStealHalfSemantics pins the transfer arithmetic: half the queue
// rounded up, capped at maxStealBatch, first chunk returned and the
// rest landing in the thief's own deque in FIFO-stealable order.
func TestStealHalfSemantics(t *testing.T) {
	victim := NewDeque()
	thief := NewDeque()
	for i := 0; i < 10; i++ {
		victim.PushBottom(Range{Start: i, End: i + 1})
	}
	first, extra, ok := victim.StealHalf(thief)
	if !ok {
		t.Fatal("StealHalf failed on a populated deque")
	}
	if first.Start != 0 {
		t.Fatalf("first stolen chunk = %+v, want the oldest (start 0)", first)
	}
	if extra != 4 {
		t.Fatalf("extra = %d, want 4 (half of 10 minus the returned chunk)", extra)
	}
	if victim.Size() != 5 {
		t.Fatalf("victim retains %d chunks, want 5", victim.Size())
	}
	if thief.Size() != 4 {
		t.Fatalf("thief holds %d chunks, want 4", thief.Size())
	}
	// The extras preserve age order: the thief's oldest is chunk 1.
	if r, ok := thief.Steal(); !ok || r.Start != 1 {
		t.Fatalf("thief's oldest chunk = %+v ok=%v, want start 1", r, ok)
	}

	// Batch cap: a huge victim yields at most maxStealBatch chunks.
	big := NewDeque()
	for i := 0; i < 100; i++ {
		big.PushBottom(Range{Start: i, End: i + 1})
	}
	thief2 := NewDeque()
	_, extra, ok = big.StealHalf(thief2)
	if !ok || extra != maxStealBatch-1 {
		t.Fatalf("extra = %d ok=%v, want %d (cap)", extra, ok, maxStealBatch-1)
	}

	// Empty victim.
	empty := NewDeque()
	if _, _, ok := empty.StealHalf(thief); ok {
		t.Fatal("StealHalf succeeded on an empty deque")
	}
}

// TestCoprimeStride checks every derived stride makes a sweep of n
// probes visit each worker exactly once.
func TestCoprimeStride(t *testing.T) {
	for n := 1; n <= 17; n++ {
		for seed := uint64(0); seed < 50; seed++ {
			s := coprimeStride(seed, n)
			if s < 1 || (n > 1 && s >= n) {
				t.Fatalf("n=%d seed=%d: stride %d out of range", n, seed, s)
			}
			seen := make([]bool, n)
			v := int(seed) % n
			for i := 0; i < n; i++ {
				seen[v] = true
				v += s
				if v >= n {
					v -= n
				}
			}
			for w, b := range seen {
				if !b {
					t.Fatalf("n=%d seed=%d stride=%d: sweep never visits worker %d", n, seed, s, w)
				}
			}
		}
	}
}

// TestStealHalfConcurrentExactlyOnce is the -race stress for batched
// stealing during ring growth: an owner pushes thousands of chunks
// (growing the ring far past its initial 64 slots) while interleaving
// PopBottom, and several thieves StealHalf into their own deques and
// drain them. Every iteration index must execute exactly once —
// batched claims must neither duplicate work against a racing
// PopBottom nor drop chunks mid-transfer.
func TestStealHalfConcurrentExactlyOnce(t *testing.T) {
	const n = 1 << 14
	const thieves = 4
	victim := NewDeque()
	hits := make([]atomic.Int32, n)
	var done atomic.Int64

	mark := func(r Range) {
		for i := r.Start; i < r.End; i++ {
			hits[i].Add(1)
			done.Add(1)
		}
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i += 4 {
			victim.PushBottom(Range{Start: i, End: i + 4})
			if i%64 == 0 {
				if r, ok := victim.PopBottom(); ok {
					mark(r)
				}
			}
		}
		for {
			r, ok := victim.PopBottom()
			if !ok {
				break
			}
			mark(r)
		}
	}()
	for k := 0; k < thieves; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			own := NewDeque()
			for done.Load() < n {
				if r, _, ok := victim.StealHalf(own); ok {
					mark(r)
				}
				// Drain everything the batch moved into our deque before
				// probing the victim again, so no chunk is left stranded
				// when we exit.
				for {
					r, ok := own.PopBottom()
					if !ok {
						break
					}
					mark(r)
				}
			}
		}()
	}
	wg.Wait()

	for i := range hits {
		if c := hits[i].Load(); c != 1 {
			t.Fatalf("index %d executed %d times, want exactly once", i, c)
		}
	}
}
