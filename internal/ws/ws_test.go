package ws

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestDequeLIFOForOwner(t *testing.T) {
	d := NewDeque()
	for i := 0; i < 10; i++ {
		d.PushBottom(Range{Start: i, End: i + 1})
	}
	for i := 9; i >= 0; i-- {
		r, ok := d.PopBottom()
		if !ok || r.Start != i {
			t.Fatalf("PopBottom got (%v,%v), want start %d", r, ok, i)
		}
	}
	if _, ok := d.PopBottom(); ok {
		t.Error("empty deque returned a value")
	}
}

func TestDequeFIFOForThieves(t *testing.T) {
	d := NewDeque()
	for i := 0; i < 10; i++ {
		d.PushBottom(Range{Start: i, End: i + 1})
	}
	for i := 0; i < 10; i++ {
		r, ok := d.Steal()
		if !ok || r.Start != i {
			t.Fatalf("Steal got (%v,%v), want start %d", r, ok, i)
		}
	}
	if _, ok := d.Steal(); ok {
		t.Error("empty deque stolen from")
	}
}

func TestDequeGrow(t *testing.T) {
	d := NewDeque()
	const n = 1000 // far beyond the initial 64 capacity
	for i := 0; i < n; i++ {
		d.PushBottom(Range{Start: i, End: i + 1})
	}
	if d.Size() != n {
		t.Fatalf("Size = %d, want %d", d.Size(), n)
	}
	seen := make(map[int]bool, n)
	for i := 0; i < n; i++ {
		r, ok := d.PopBottom()
		if !ok {
			t.Fatalf("pop %d failed", i)
		}
		if seen[r.Start] {
			t.Fatalf("duplicate element %d", r.Start)
		}
		seen[r.Start] = true
	}
}

func TestDequeMixedOwnerThief(t *testing.T) {
	d := NewDeque()
	d.PushBottom(Range{Start: 1, End: 2})
	d.PushBottom(Range{Start: 2, End: 3})
	if r, ok := d.Steal(); !ok || r.Start != 1 {
		t.Fatalf("Steal = (%v,%v), want start 1", r, ok)
	}
	if r, ok := d.PopBottom(); !ok || r.Start != 2 {
		t.Fatalf("PopBottom = (%v,%v), want start 2", r, ok)
	}
	if _, ok := d.Steal(); ok {
		t.Error("deque should be empty")
	}
}

// Concurrent stress: one owner pushes/pops, many thieves steal; every
// pushed element must be consumed exactly once.
func TestDequeConcurrentConservation(t *testing.T) {
	const total = 20000
	const thieves = 4
	d := NewDeque()
	var consumed atomic.Int64
	var sum atomic.Int64
	var wg sync.WaitGroup

	for i := 0; i < thieves; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for consumed.Load() < total {
				if r, ok := d.Steal(); ok {
					sum.Add(int64(r.Start))
					consumed.Add(1)
				}
			}
		}()
	}
	// Owner: push all, interleaving occasional pops.
	for i := 0; i < total; i++ {
		d.PushBottom(Range{Start: i, End: i + 1})
		if i%3 == 0 {
			if r, ok := d.PopBottom(); ok {
				sum.Add(int64(r.Start))
				consumed.Add(1)
			}
		}
	}
	for consumed.Load() < total {
		if r, ok := d.PopBottom(); ok {
			sum.Add(int64(r.Start))
			consumed.Add(1)
		}
	}
	wg.Wait()
	want := int64(total) * (total - 1) / 2
	if sum.Load() != want {
		t.Errorf("element sum = %d, want %d (lost or duplicated work)", sum.Load(), want)
	}
}

func TestParallelForCoversAllIndices(t *testing.T) {
	p := NewPool(4)
	const n = 100000
	hits := make([]int32, n)
	p.ParallelFor(n, 64, func(i int) {
		atomic.AddInt32(&hits[i], 1)
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d executed %d times", i, h)
		}
	}
}

func TestParallelForSmallAndEdge(t *testing.T) {
	p := NewPool(8)
	var count atomic.Int64
	p.ParallelFor(0, 10, func(int) { count.Add(1) })
	if count.Load() != 0 {
		t.Error("n=0 should run nothing")
	}
	p.ParallelFor(5, 100, func(int) { count.Add(1) }) // below grain
	if count.Load() != 5 {
		t.Errorf("n=5 ran %d iterations", count.Load())
	}
	single := NewPool(1)
	count.Store(0)
	single.ParallelFor(1000, 10, func(int) { count.Add(1) })
	if count.Load() != 1000 {
		t.Errorf("single worker ran %d iterations", count.Load())
	}
}

func TestParallelRangeChunks(t *testing.T) {
	p := NewPool(4)
	var covered atomic.Int64
	p.ParallelRange(10000, 128, func(r Range) {
		if r.Start < 0 || r.End > 10000 || r.Start >= r.End {
			t.Errorf("bad range %+v", r)
		}
		covered.Add(int64(r.Len()))
	})
	if covered.Load() != 10000 {
		t.Errorf("covered %d iterations, want 10000", covered.Load())
	}
}

func TestNewPoolDefaults(t *testing.T) {
	if NewPool(0).Workers() <= 0 {
		t.Error("default pool should have workers")
	}
	if NewPool(3).Workers() != 3 {
		t.Error("explicit worker count ignored")
	}
}

func TestSharedCounterSequential(t *testing.T) {
	c := NewSharedCounter(100)
	r, ok := c.Grab(30)
	if !ok || r.Start != 0 || r.End != 30 {
		t.Fatalf("first grab = %+v", r)
	}
	if c.Remaining() != 70 {
		t.Errorf("Remaining = %d, want 70", c.Remaining())
	}
	r, _ = c.Grab(100) // clamped to what's left
	if r.End != 100 || r.Start != 30 {
		t.Errorf("clamped grab = %+v", r)
	}
	if _, ok := c.Grab(1); ok {
		t.Error("exhausted counter granted work")
	}
	if _, ok := c.Grab(0); ok {
		t.Error("k=0 grab should fail")
	}
}

func TestSharedCounterConcurrent(t *testing.T) {
	const n = 100000
	c := NewSharedCounter(n)
	var total atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				r, ok := c.Grab(97)
				if !ok {
					return
				}
				total.Add(int64(r.Len()))
			}
		}()
	}
	wg.Wait()
	if total.Load() != n {
		t.Errorf("grabbed %d iterations, want %d", total.Load(), n)
	}
	if c.Remaining() != 0 {
		t.Errorf("Remaining = %d, want 0", c.Remaining())
	}
}

func TestSharedCounterPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewSharedCounter(-1)
}

// Property: ParallelFor computes the same sum as a serial loop.
func TestParallelForSumProperty(t *testing.T) {
	p := NewPool(4)
	f := func(n uint16, grain uint8) bool {
		nn := int(n) % 5000
		var sum atomic.Int64
		p.ParallelFor(nn, int(grain), func(i int) { sum.Add(int64(i)) })
		return sum.Load() == int64(nn)*int64(nn-1)/2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Regression for the cancellation/completion race: a loop that has
// executed every iteration must return nil even when the context is
// cancelled at the same instant. The last body to execute cancels the
// context, so completion and cancellation land together; whatever the
// schedule, the loop must (a) have run every index exactly once and
// (b) report either success or cancellation — and across many trials
// success must actually occur, which the old code never did (it
// returned ctx.Err() even after observing the drained pool).
func TestCompletedLoopNeverReportsSpuriousCancellation(t *testing.T) {
	const trials = 300
	const n = 512
	p := NewPool(4)
	nilErrs := 0
	for trial := 0; trial < trials; trial++ {
		ctx, cancel := context.WithCancel(context.Background())
		var count atomic.Int64
		err := p.ParallelForCtx(ctx, n, 16, func(int) {
			if count.Add(1) == n {
				cancel()
			}
		})
		if got := count.Load(); got != n {
			t.Fatalf("trial %d: executed %d iterations, want %d", trial, got, n)
		}
		switch {
		case err == nil:
			nilErrs++
		case errors.Is(err, context.Canceled):
			// Cancellation observed before the final bookkeeping landed:
			// acceptable, the race was real.
		default:
			t.Fatalf("trial %d: err = %v", trial, err)
		}
		cancel()
	}
	if nilErrs == 0 {
		t.Errorf("all %d fully-drained loops reported cancellation; a completed loop must return nil", trials)
	}
}

// Deque stress across ring growth: thieves steal continuously while
// the owner pushes enough elements (in bursts, with interleaved pops)
// to force the ring through several doublings. Every element must be
// consumed exactly once.
func TestDequeStealDuringGrowth(t *testing.T) {
	const (
		total   = 1 << 17 // forces growth 64 -> 131072 under backlog
		burst   = 4096
		thieves = 4
	)
	d := NewDeque()
	taken := make([]int32, total)
	var consumed atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < thieves; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for consumed.Load() < total {
				if r, ok := d.Steal(); ok {
					atomic.AddInt32(&taken[r.Start], 1)
					consumed.Add(1)
				}
			}
		}()
	}
	for next := 0; next < total; {
		stop := next + burst
		if stop > total {
			stop = total
		}
		for ; next < stop; next++ {
			d.PushBottom(Range{Start: next, End: next + 1})
		}
		// Interleave owner pops against in-flight steals.
		for i := 0; i < burst/8; i++ {
			if r, ok := d.PopBottom(); ok {
				atomic.AddInt32(&taken[r.Start], 1)
				consumed.Add(1)
			}
		}
	}
	for consumed.Load() < total {
		if r, ok := d.PopBottom(); ok {
			atomic.AddInt32(&taken[r.Start], 1)
			consumed.Add(1)
		}
	}
	wg.Wait()
	for i, c := range taken {
		if c != 1 {
			t.Fatalf("element %d consumed %d times", i, c)
		}
	}
}

// A pool must support many loops in flight at once: concurrent callers
// share one Pool and every loop still executes each index exactly once.
func TestPoolConcurrentLoops(t *testing.T) {
	p := NewPool(4)
	const (
		callers = 8
		n       = 40000
	)
	var wg sync.WaitGroup
	errs := make([]error, callers)
	hits := make([][]int32, callers)
	for c := 0; c < callers; c++ {
		hits[c] = make([]int32, n)
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			errs[c] = p.ParallelFor(n, 64, func(i int) {
				atomic.AddInt32(&hits[c][i], 1)
			})
		}(c)
	}
	wg.Wait()
	for c := 0; c < callers; c++ {
		if errs[c] != nil {
			t.Fatalf("caller %d: %v", c, errs[c])
		}
		for i, h := range hits[c] {
			if h != 1 {
				t.Fatalf("caller %d index %d executed %d times", c, i, h)
			}
		}
	}
}
