package eas

import "github.com/hetsched/eas/internal/metrics"

// Metric is an energy-related objective; lower values are better. The
// zero Metric is invalid — use one of the standard metrics or NewMetric.
type Metric struct {
	inner metrics.Metric
}

func (m Metric) valid() bool { return m.inner.Valid() }

// Name returns the metric's name.
func (m Metric) Name() string { return m.inner.Name() }

// Eval computes the metric from average package power (watts) and
// execution time (seconds).
func (m Metric) Eval(powerW, timeS float64) float64 { return m.inner.Eval(powerW, timeS) }

// Standard metrics.
var (
	// Energy is total energy use, E = P·T — what battery-constrained
	// mobile users optimize.
	Energy = Metric{inner: metrics.Energy}
	// EDP is the energy-delay product, P·T² — the paper's headline
	// metric, balancing energy with performance.
	EDP = Metric{inner: metrics.EDP}
	// ED2P is energy-delay-squared, P·T³ — for deployments where
	// execution time dominates.
	ED2P = Metric{inner: metrics.ED2P}
)

// MetricByName resolves "energy", "edp", or "ed2p".
func MetricByName(name string) (Metric, error) {
	m, err := metrics.ByName(name)
	if err != nil {
		return Metric{}, err
	}
	return Metric{inner: m}, nil
}

// NewMetric builds a custom objective from any function of average
// package power (watts) and execution time (seconds). The scheduler can
// optimize any such metric (paper §3.2).
func NewMetric(name string, eval func(powerW, timeS float64) float64) Metric {
	return Metric{inner: metrics.New(name, eval)}
}
