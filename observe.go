package eas

import (
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"time"

	"github.com/hetsched/eas/internal/core"
	"github.com/hetsched/eas/internal/obs"
)

// Observer collects end-to-end observability data from every runtime
// it is attached to (via Config.Observer): a per-invocation span trace
// kept in a bounded in-memory ring, a decision-audit record for every
// α search, and a registry of runtime metrics. One Observer may be
// shared by any number of Runtimes — invocation ids stay unique across
// all of them, so a multi-tenant process renders as one coherent
// timeline.
//
// Everything here is optional and near-free when absent: a Runtime
// whose Config.Observer is nil runs the exact historical code path and
// allocates nothing extra.
type Observer struct {
	inner *obs.Observer
	ring  *obs.RingSink
	reg   *obs.Registry
}

// ObserverOptions tunes a new Observer. The zero value is a good
// default.
type ObserverOptions struct {
	// RingCapacity bounds the span ring buffer (default 8192 spans ≈
	// the last ~1500 invocations); older spans are overwritten.
	RingCapacity int
}

// NewObserver builds an observer with a bounded span ring and a fresh
// metrics registry.
func NewObserver(opts ObserverOptions) *Observer {
	capacity := opts.RingCapacity
	if capacity <= 0 {
		capacity = obs.DefaultRingCapacity
	}
	ring := obs.NewRingSink(capacity)
	reg := obs.NewRegistry()
	return &Observer{inner: obs.New(ring, reg), ring: ring, reg: reg}
}

// internal returns the wrapped observer (nil for a nil Observer), the
// form Config plumbing hands to the scheduler core.
func (o *Observer) internal() *obs.Observer {
	if o == nil {
		return nil
	}
	return o.inner
}

// WriteChromeTrace renders the ring's current span snapshot as Chrome
// trace-event JSON, loadable directly in Perfetto
// (https://ui.perfetto.dev) or chrome://tracing. Each invocation is
// one track; the alpha-search span's args carry the full decision
// audit (measured throughputs, workload category, fitted curve, and
// the objective at every α grid point).
func (o *Observer) WriteChromeTrace(w io.Writer) error {
	if o == nil {
		return errors.New("eas: nil observer")
	}
	return obs.WriteChromeTrace(w, o.ring.Snapshot())
}

// WriteMetrics writes the metrics registry in Prometheus text
// exposition format (version 0.0.4).
func (o *Observer) WriteMetrics(w io.Writer) error {
	if o == nil {
		return errors.New("eas: nil observer")
	}
	return o.reg.WritePrometheus(w)
}

// Handler returns an http.Handler serving /metrics (Prometheus text)
// and /debug/trace (Chrome trace JSON of the current ring snapshot).
func (o *Observer) Handler() http.Handler {
	if o == nil {
		return http.NotFoundHandler()
	}
	return obs.NewHTTPHandler(o.reg, o.ring)
}

// Serve starts an HTTP server for Handler on addr (e.g.
// "localhost:9190"; a ":0" port picks a free one — read the bound
// address back from ObserverServer.Addr). The server runs until
// Close.
func (o *Observer) Serve(addr string) (*ObserverServer, error) {
	if o == nil {
		return nil, errors.New("eas: nil observer")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("eas: observer listen: %w", err)
	}
	srv := &http.Server{Handler: o.Handler()}
	s := &ObserverServer{Addr: ln.Addr().String(), srv: srv}
	go func() { _ = srv.Serve(ln) }()
	return s, nil
}

// ObserverServer is a running metrics/trace HTTP endpoint.
type ObserverServer struct {
	// Addr is the bound listen address (host:port).
	Addr string

	srv       *http.Server
	closeOnce sync.Once
	closeErr  error
}

// Close shuts the endpoint down. Idempotent.
func (s *ObserverServer) Close() error {
	s.closeOnce.Do(func() { s.closeErr = s.srv.Close() })
	return s.closeErr
}

// registerRuntimeCollectors wires a runtime's always-on component
// counters (work-stealing pool, GPU command queue) into the observer's
// registry as pull-style metrics: a collector snapshots the component
// stats at scrape time and folds the delta since the previous scrape
// into shared counters, so several runtimes on one observer sum
// cleanly.
func (o *Observer) registerRuntimeCollectors(r *Runtime) {
	if o == nil {
		return
	}
	steals := o.reg.Counter("eas_ws_steals_total",
		"Work-stealing chunks executed by a worker other than their owner.")
	parks := o.reg.Counter("eas_ws_parks_total",
		"Idle episodes in which a pool worker parked on the semaphore.")
	wakes := o.reg.Counter("eas_ws_wakes_total",
		"Wakeups delivered to parked pool workers.")
	enqueues := o.reg.Counter("eas_cl_enqueues_total",
		"Functional GPU NDRange enqueues attempted.")
	busy := o.reg.Counter("eas_cl_enqueue_busy_total",
		"Functional GPU enqueues transiently rejected as device-busy.")
	lastPool := r.pool.Stats()
	lastQ := r.queue.Stats()
	o.reg.RegisterCollector(func() {
		p := r.pool.Stats()
		steals.Add(p.Steals - lastPool.Steals)
		parks.Add(p.Parks - lastPool.Parks)
		wakes.Add(p.Wakes - lastPool.Wakes)
		lastPool = p
		q := r.queue.Stats()
		enqueues.Add(q.Enqueues - lastQ.Enqueues)
		busy.Add(q.Busy - lastQ.Busy)
		lastQ = q
	})
	o.registerAdmissionCollectors(r)
}

// registerAdmissionCollectors exposes admission-gate pressure on
// /metrics: total queued waiters always, and — when the tiered
// controller is active — per-class queue depths, per-class admission
// counters, shed counters by reason, aging promotions, and
// late-release counts. Deltas fold at scrape time like the other
// pull-style collectors, so several runtimes on one observer sum
// cleanly. (Watchdog stalls are push-style — see RecordWatchdogStall —
// because each one also lands in the trace as a degradation instant.)
func (o *Observer) registerAdmissionCollectors(r *Runtime) {
	adm := r.sched.Admission()
	waiters := o.reg.Gauge("eas_admission_waiters",
		"Invocations currently queued at the admission gate.")
	if !adm.Tiered() {
		o.reg.RegisterCollector(func() {
			waiters.Set(float64(adm.Waiters()))
		})
		return
	}
	var depth [core.NumClasses]*obs.Gauge
	var admittedC [core.NumClasses]*obs.Counter
	for c := core.Class(0); c < core.NumClasses; c++ {
		depth[c] = o.reg.Gauge(
			`eas_admission_queue_depth{class="`+c.String()+`"}`,
			"Invocations queued at the admission gate, by priority class.")
		admittedC[c] = o.reg.Counter(
			`eas_admission_admitted_total{class="`+c.String()+`"}`,
			"Invocations admitted through the tiered gate, by priority class.")
	}
	shedHelp := "Invocations shed at the admission gate, by reason."
	shedQuota := o.reg.Counter(`eas_admission_shed_total{reason="tenant-quota"}`, shedHelp)
	shedQueue := o.reg.Counter(`eas_admission_shed_total{reason="queue-full"}`, shedHelp)
	shedDeadline := o.reg.Counter(`eas_admission_shed_total{reason="deadline"}`, shedHelp)
	aging := o.reg.Counter("eas_admission_aging_promotions_total",
		"Grants in which aging let a lower-priority waiter overtake a queued higher class.")
	late := o.reg.Counter("eas_admission_late_releases_total",
		"Releases arriving after the watchdog had already revoked the holder's ticket.")
	var last core.AdmissionStats
	o.reg.RegisterCollector(func() {
		waiters.Set(float64(adm.Waiters()))
		st, ok := adm.TieredStats()
		if !ok {
			return
		}
		for c := 0; c < core.NumClasses; c++ {
			depth[c].Set(float64(st.QueueDepth[c]))
			admittedC[c].Add(st.Admitted[c] - last.Admitted[c])
		}
		shedQuota.Add(st.ShedQuota - last.ShedQuota)
		shedQueue.Add(st.ShedQueueFull - last.ShedQueueFull)
		shedDeadline.Add(st.ShedDeadline - last.ShedDeadline)
		aging.Add(st.AgingPromotions - last.AgingPromotions)
		late.Add(st.LateReleases - last.LateReleases)
		last = st
	})
}

// invocationAttrs builds the root-span closing attributes for a
// completed invocation (only called on enabled scopes).
func invocationAttrs(out *Report) []obs.Attr {
	attrs := []obs.Attr{
		obs.Num("alpha", out.Alpha),
		obs.Num("energy_j", out.EnergyJ),
		obs.Num("duration_us", float64(out.Duration.Microseconds())),
	}
	if out.FallbackReason != FallbackNone {
		attrs = append(attrs, obs.Str("fallback", string(out.FallbackReason)))
	}
	return attrs
}

// finishScope closes an invocation's root span and records its metric
// deltas — the eas layer owns the scope, so it records exactly once,
// amending the core's fallback reason with the functional layer's more
// specific one (enqueue-error, gpu-timeout) when the degradation
// happened there.
func (r *Runtime) finishScope(sc obs.Scope, st obs.InvocationStats, out *Report, started time.Time) {
	if !sc.Enabled() {
		return
	}
	st.Seconds = time.Since(started).Seconds()
	st.Alpha = out.Alpha
	st.Retries = out.Retries
	if out.FallbackReason != FallbackNone {
		st.Fallback = string(out.FallbackReason)
	}
	sc.End(invocationAttrs(out)...)
	r.obsv.RecordInvocation(st)
}
