package eas

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"time"

	"github.com/hetsched/eas/internal/core"
	"github.com/hetsched/eas/internal/obs"
)

// Observer collects end-to-end observability data from every runtime
// it is attached to (via Config.Observer): a per-invocation span trace
// kept in a bounded in-memory ring, a decision-audit record for every
// α search, and a registry of runtime metrics. One Observer may be
// shared by any number of Runtimes — invocation ids stay unique across
// all of them, so a multi-tenant process renders as one coherent
// timeline.
//
// Everything here is optional and near-free when absent: a Runtime
// whose Config.Observer is nil runs the exact historical code path and
// allocates nothing extra.
type Observer struct {
	inner *obs.Observer
	ring  *obs.RingSink
	reg   *obs.Registry
	pprof bool
}

// ObserverOptions tunes a new Observer. The zero value is a good
// default.
type ObserverOptions struct {
	// RingCapacity bounds the span ring buffer (default 8192 spans ≈
	// the last ~1500 invocations); older spans are overwritten.
	RingCapacity int
	// Flight arms the black-box flight recorder: an always-on ring of
	// compact scheduler events (decisions, sheds, breaker transitions,
	// watchdog stalls, WAL errors) that anomaly triggers freeze into
	// JSON incident dumps. The zero value keeps the recorder off.
	Flight FlightPolicy
	// EnablePprof mounts Go's net/http/pprof profiling endpoints under
	// /debug/pprof/ on Handler and Serve. Off by default — the profile
	// endpoints expose process internals and cost CPU while sampled, so
	// they are strictly opt-in.
	EnablePprof bool
}

// FlightPolicy configures the flight recorder (see ObserverOptions.
// Flight). Any non-zero field arms the recorder; zero sub-fields pick
// defaults. The watchdog-stall and breaker-open triggers are always
// armed once recording; the rate triggers need their thresholds set.
type FlightPolicy struct {
	// Enable arms the recorder even with every other field zero.
	Enable bool
	// Events bounds the event ring (default 4096).
	Events int
	// Dir receives incident dump files named
	// incident-<n>-<trigger>.json ("" keeps dumps in memory only,
	// served at /debug/flight).
	Dir string
	// Debounce is the minimum spacing between dumps — an anomaly storm
	// inside the window produces one dump, with the rest counted in the
	// artifact's "suppressed" field (default 30s).
	Debounce time.Duration
	// ShedSpike triggers a dump when this many admission sheds land
	// inside ShedWindow (default window 1s). 0 disables the trigger.
	ShedSpike int
	// ShedWindow is the shed-spike sliding window (default 1s).
	ShedWindow time.Duration
	// P99Latency triggers a dump when the sliding-window p99 of
	// invocation latencies exceeds it. 0 disables the trigger.
	P99Latency time.Duration
	// LatencyWindow is how many recent invocations the p99 estimate
	// spans (default 256).
	LatencyWindow int
}

// enabled reports whether any field arms the recorder.
func (p FlightPolicy) enabled() bool {
	return p != FlightPolicy{}
}

func (p FlightPolicy) internal() obs.FlightPolicy {
	return obs.FlightPolicy{
		Events:        p.Events,
		Dir:           p.Dir,
		Debounce:      p.Debounce,
		ShedSpike:     p.ShedSpike,
		ShedWindow:    p.ShedWindow,
		P99Latency:    p.P99Latency,
		LatencyWindow: p.LatencyWindow,
	}
}

// NewObserver builds an observer with a bounded span ring and a fresh
// metrics registry.
func NewObserver(opts ObserverOptions) *Observer {
	capacity := opts.RingCapacity
	if capacity <= 0 {
		capacity = obs.DefaultRingCapacity
	}
	ring := obs.NewRingSink(capacity)
	reg := obs.NewRegistry()
	o := &Observer{inner: obs.New(ring, reg), ring: ring, reg: reg, pprof: opts.EnablePprof}
	if opts.Flight.enabled() {
		o.inner.AttachFlight(opts.Flight.internal())
	}
	return o
}

// internal returns the wrapped observer (nil for a nil Observer), the
// form Config plumbing hands to the scheduler core.
func (o *Observer) internal() *obs.Observer {
	if o == nil {
		return nil
	}
	return o.inner
}

// WriteChromeTrace renders the ring's current span snapshot as Chrome
// trace-event JSON, loadable directly in Perfetto
// (https://ui.perfetto.dev) or chrome://tracing. Each invocation is
// one track; the alpha-search span's args carry the full decision
// audit (measured throughputs, workload category, fitted curve, and
// the objective at every α grid point).
func (o *Observer) WriteChromeTrace(w io.Writer) error {
	if o == nil {
		return errors.New("eas: nil observer")
	}
	return obs.WriteChromeTrace(w, o.ring.Snapshot())
}

// WriteMetrics writes the metrics registry in Prometheus text
// exposition format (version 0.0.4).
func (o *Observer) WriteMetrics(w io.Writer) error {
	if o == nil {
		return errors.New("eas: nil observer")
	}
	return o.reg.WritePrometheus(w)
}

// Handler returns an http.Handler serving /metrics (Prometheus text),
// /debug/trace (Chrome trace JSON of the current ring snapshot),
// /debug/tenants (per-tenant accounting JSON), /debug/flight (the
// flight recorder's latest incident, when one is armed), and — with
// ObserverOptions.EnablePprof — Go's /debug/pprof/ endpoints.
func (o *Observer) Handler() http.Handler {
	if o == nil {
		return http.NotFoundHandler()
	}
	return obs.NewHTTPHandlerOpts(obs.HTTPOptions{
		Registry:    o.reg,
		Ring:        o.ring,
		Observer:    o.inner,
		EnablePprof: o.pprof,
	})
}

// FlightDumps reports how many incident dumps the flight recorder has
// produced (0 when the recorder is not armed).
func (o *Observer) FlightDumps() uint64 {
	if o == nil {
		return 0
	}
	return o.inner.Flight().Dumps()
}

// Serve starts an HTTP server for Handler on addr (e.g.
// "localhost:9190"; a ":0" port picks a free one — read the bound
// address back from ObserverServer.Addr). The server runs until
// Close.
func (o *Observer) Serve(addr string) (*ObserverServer, error) {
	if o == nil {
		return nil, errors.New("eas: nil observer")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("eas: observer listen: %w", err)
	}
	srv := &http.Server{Handler: o.Handler()}
	s := &ObserverServer{addr: ln.Addr().String(), srv: srv}
	go func() { _ = srv.Serve(ln) }()
	return s, nil
}

// ObserverServer is a running metrics/trace HTTP endpoint.
type ObserverServer struct {
	addr      string
	srv       *http.Server
	closeOnce sync.Once
	closeErr  error
}

// Addr returns the bound listen address (host:port) — the way to learn
// the actual port after Serve(":0").
func (s *ObserverServer) Addr() string { return s.addr }

// Close shuts the endpoint down. Idempotent.
func (s *ObserverServer) Close() error {
	s.closeOnce.Do(func() { s.closeErr = s.srv.Close() })
	return s.closeErr
}

// registerRuntimeCollectors wires a runtime's always-on component
// counters (work-stealing pool, GPU command queue) into the observer's
// registry as pull-style metrics: a collector snapshots the component
// stats at scrape time and folds the delta since the previous scrape
// into shared counters, so several runtimes on one observer sum
// cleanly.
func (o *Observer) registerRuntimeCollectors(r *Runtime) {
	if o == nil {
		return
	}
	steals := o.reg.Counter("eas_ws_steals_total",
		"Work-stealing chunks executed by a worker other than their owner.")
	parks := o.reg.Counter("eas_ws_parks_total",
		"Idle episodes in which a pool worker parked on the semaphore.")
	wakes := o.reg.Counter("eas_ws_wakes_total",
		"Wakeups delivered to parked pool workers.")
	enqueues := o.reg.Counter("eas_cl_enqueues_total",
		"Functional GPU NDRange enqueues attempted.")
	busy := o.reg.Counter("eas_cl_enqueue_busy_total",
		"Functional GPU enqueues transiently rejected as device-busy.")
	lastPool := r.pool.Stats()
	lastQ := r.queue.Stats()
	o.reg.RegisterCollector(func() {
		p := r.pool.Stats()
		steals.Add(p.Steals - lastPool.Steals)
		parks.Add(p.Parks - lastPool.Parks)
		wakes.Add(p.Wakes - lastPool.Wakes)
		lastPool = p
		q := r.queue.Stats()
		enqueues.Add(q.Enqueues - lastQ.Enqueues)
		busy.Add(q.Busy - lastQ.Busy)
		lastQ = q
	})
	o.registerAdmissionCollectors(r)
}

// registerAdmissionCollectors exposes admission-gate pressure on
// /metrics: total queued waiters always, and — when the tiered
// controller is active — per-class queue depths, per-class admission
// counters, shed counters by reason, aging promotions, and
// late-release counts. Deltas fold at scrape time like the other
// pull-style collectors, so several runtimes on one observer sum
// cleanly. (Watchdog stalls are push-style — see RecordWatchdogStall —
// because each one also lands in the trace as a degradation instant.)
func (o *Observer) registerAdmissionCollectors(r *Runtime) {
	adm := r.sched.Admission()
	waiters := o.reg.Gauge("eas_admission_waiters",
		"Invocations currently queued at the admission gate.")
	if !adm.Tiered() {
		o.reg.RegisterCollector(func() {
			waiters.Set(float64(adm.Waiters()))
		})
		return
	}
	var depth [core.NumClasses]*obs.Gauge
	var admittedC [core.NumClasses]*obs.Counter
	for c := core.Class(0); c < core.NumClasses; c++ {
		depth[c] = o.reg.Gauge(
			`eas_admission_queue_depth{class="`+c.String()+`"}`,
			"Invocations queued at the admission gate, by priority class.")
		admittedC[c] = o.reg.Counter(
			`eas_admission_admitted_total{class="`+c.String()+`"}`,
			"Invocations admitted through the tiered gate, by priority class.")
	}
	shedHelp := "Invocations shed at the admission gate, by reason."
	shedQuota := o.reg.Counter(`eas_admission_shed_total{reason="tenant-quota"}`, shedHelp)
	shedQueue := o.reg.Counter(`eas_admission_shed_total{reason="queue-full"}`, shedHelp)
	shedDeadline := o.reg.Counter(`eas_admission_shed_total{reason="deadline"}`, shedHelp)
	aging := o.reg.Counter("eas_admission_aging_promotions_total",
		"Grants in which aging let a lower-priority waiter overtake a queued higher class.")
	late := o.reg.Counter("eas_admission_late_releases_total",
		"Releases arriving after the watchdog had already revoked the holder's ticket.")
	var last core.AdmissionStats
	o.reg.RegisterCollector(func() {
		waiters.Set(float64(adm.Waiters()))
		st, ok := adm.TieredStats()
		if !ok {
			return
		}
		for c := 0; c < core.NumClasses; c++ {
			depth[c].Set(float64(st.QueueDepth[c]))
			admittedC[c].Add(st.Admitted[c] - last.Admitted[c])
		}
		shedQuota.Add(st.ShedQuota - last.ShedQuota)
		shedQueue.Add(st.ShedQueueFull - last.ShedQueueFull)
		shedDeadline.Add(st.ShedDeadline - last.ShedDeadline)
		aging.Add(st.AgingPromotions - last.AgingPromotions)
		late.Add(st.LateReleases - last.LateReleases)
		last = st
	})
}

// invocationAttrs builds the root-span closing attributes for a
// completed invocation (only called on enabled scopes).
func invocationAttrs(out *Report) []obs.Attr {
	attrs := []obs.Attr{
		obs.Num("alpha", out.Alpha),
		obs.Num("energy_j", out.EnergyJ),
		obs.Num("duration_us", float64(out.Duration.Microseconds())),
	}
	if out.FallbackReason != FallbackNone {
		attrs = append(attrs, obs.Str("fallback", string(out.FallbackReason)))
	}
	return attrs
}

// finishScope closes an invocation's root span and records its metric
// deltas — the eas layer owns the scope, so it records exactly once,
// amending the core's fallback reason with the functional layer's more
// specific one (enqueue-error, gpu-timeout) when the degradation
// happened there.
func (r *Runtime) finishScope(ctx context.Context, sc obs.Scope, st obs.InvocationStats, kernel string, out *Report, started time.Time) {
	if !sc.Enabled() {
		return
	}
	st.Kernel = kernel
	req := core.RequestFromContext(ctx)
	st.Tenant = req.Tenant
	st.Class = req.Class.String()
	st.Seconds = time.Since(started).Seconds()
	st.Alpha = out.Alpha
	st.Retries = out.Retries
	if out.FallbackReason != FallbackNone {
		st.Fallback = string(out.FallbackReason)
	}
	sc.End(invocationAttrs(out)...)
	r.obsv.RecordInvocation(st)
}
