package eas

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// chromeDump mirrors the subset of the Chrome trace-event format the
// exporter emits, enough to assert structure without depending on
// internal types.
type chromeDump struct {
	TraceEvents []struct {
		Name  string         `json:"name"`
		Phase string         `json:"ph"`
		TID   uint64         `json:"tid"`
		Args  map[string]any `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

// TestObserverEndToEnd runs four tenants concurrently against one
// observed runtime — the ISSUE's acceptance scenario — then checks
// both exporters: the Chrome trace must contain one root span tree per
// invocation with the α-search decision audit attached, and /metrics
// must serve Prometheus text carrying the invocation-latency
// histogram, the α distribution, and the degradation counters.
func TestObserverEndToEnd(t *testing.T) {
	observer := NewObserver(ObserverOptions{})
	rt, err := NewRuntime(DesktopPlatform(), Config{
		Metric:   EDP,
		Model:    sharedModel(t),
		Observer: observer,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	const tenants, perTenant = 4, 3
	var wg sync.WaitGroup
	errs := make(chan error, tenants)
	for tn := 0; tn < tenants; tn++ {
		wg.Add(1)
		go func(tn int) {
			defer wg.Done()
			k := Kernel{
				Name:          fmt.Sprintf("tenant-%d", tn),
				FLOPsPerItem:  float64(10 * (tn + 1)),
				MemOpsPerItem: 50, L3MissRatio: 0.4, InstructionsPerItem: 300,
				Body: func(int) {},
			}
			for i := 0; i < perTenant; i++ {
				rep, err := rt.ParallelFor(k, 120000)
				if err != nil {
					errs <- fmt.Errorf("tenant %d invocation %d: %w", tn, i, err)
					return
				}
				if rep.InvocationID == 0 {
					errs <- fmt.Errorf("tenant %d invocation %d: zero InvocationID", tn, i)
					return
				}
				if rep.Finished.Before(rep.Started) || rep.Started.IsZero() {
					errs <- fmt.Errorf("tenant %d invocation %d: bad wall-clock stamps %v..%v",
						tn, i, rep.Started, rep.Finished)
					return
				}
			}
			errs <- nil
		}(tn)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	// --- Chrome trace exporter ---
	var buf bytes.Buffer
	if err := observer.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var dump chromeDump
	if err := json.Unmarshal(buf.Bytes(), &dump); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if dump.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", dump.DisplayTimeUnit)
	}
	roots := map[uint64]bool{} // one root span track per invocation
	explains := 0
	for _, ev := range dump.TraceEvents {
		switch {
		case ev.Name == "invocation" && ev.Phase == "X":
			if kernel, _ := ev.Args["kernel"].(string); !strings.HasPrefix(kernel, "tenant-") {
				t.Errorf("root span for track %d has kernel %v, want tenant-*", ev.TID, ev.Args["kernel"])
			}
			roots[ev.TID] = true
		case ev.Name == "alpha-search":
			ex, ok := ev.Args["explain"].(map[string]any)
			if !ok {
				t.Fatalf("alpha-search span lacks explain args: %+v", ev.Args)
			}
			grid, ok := ex["grid"].([]any)
			if !ok || len(grid) < 2 {
				t.Fatalf("explain grid missing or trivial: %+v", ex)
			}
			for _, key := range []string{"rc", "rg", "category", "curve", "alpha", "objective"} {
				if _, ok := ex[key]; !ok {
					t.Errorf("explain missing %q: %+v", key, ex)
				}
			}
			explains++
		}
	}
	if want := tenants * perTenant; len(roots) != want {
		t.Errorf("trace has %d invocation tracks, want %d", len(roots), want)
	}
	// Every kernel is new on its first invocation, so each tenant
	// α-searches at least once.
	if explains < tenants {
		t.Errorf("trace has %d alpha-search explain records, want ≥ %d", explains, tenants)
	}

	// --- Prometheus / HTTP exporter ---
	srv := httptest.NewServer(observer.Handler())
	defer srv.Close()
	body := httpGet(t, srv.URL+"/metrics")
	for _, name := range []string{
		"eas_invocation_seconds", "eas_profile_seconds", "eas_alpha",
		"eas_gpu_retries_total", "eas_breaker_state",
		"eas_meter_samples_rejected_total",
		"eas_ws_steals_total", "eas_cl_enqueues_total",
	} {
		if !strings.Contains(body, name) {
			t.Errorf("/metrics missing %s", name)
		}
	}
	if want := fmt.Sprintf("eas_invocation_seconds_count %d", tenants*perTenant); !strings.Contains(body, want) {
		t.Errorf("/metrics lacks %q:\n%s", want, body)
	}
	var viaHTTP chromeDump
	if err := json.Unmarshal([]byte(httpGet(t, srv.URL+"/debug/trace")), &viaHTTP); err != nil {
		t.Fatalf("/debug/trace is not valid JSON: %v", err)
	}
	if len(viaHTTP.TraceEvents) == 0 {
		t.Error("/debug/trace returned an empty trace")
	}
}

// TestObserverServeLifecycle covers the managed HTTP endpoint: a ":0"
// listen picks a free port, the endpoint serves metrics, and Close is
// idempotent.
func TestObserverServeLifecycle(t *testing.T) {
	observer := NewObserver(ObserverOptions{})
	srv, err := observer.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	body := httpGet(t, "http://"+srv.Addr()+"/metrics")
	if !strings.Contains(body, "eas_invocation_seconds") {
		t.Errorf("served metrics missing histogram header:\n%s", body)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

// TestNilObserverAPI pins the nil-safety contract of the public
// surface: a nil *Observer is a valid "off" value everywhere.
func TestNilObserverAPI(t *testing.T) {
	var o *Observer
	if err := o.WriteChromeTrace(io.Discard); err == nil {
		t.Error("nil observer WriteChromeTrace should error")
	}
	if err := o.WriteMetrics(io.Discard); err == nil {
		t.Error("nil observer WriteMetrics should error")
	}
	if _, err := o.Serve("127.0.0.1:0"); err == nil {
		t.Error("nil observer Serve should error")
	}
	rec := httptest.NewRecorder()
	o.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("nil observer handler status = %d, want 404", rec.Code)
	}
}

// TestInvocationIDsWithoutObserver checks the fallback sequence: even
// with no observer attached, reports carry monotonically increasing
// invocation ids and wall-clock stamps.
func TestInvocationIDsWithoutObserver(t *testing.T) {
	rt := newRuntime(t, EDP)
	var last uint64
	for i := 0; i < 3; i++ {
		rep, err := rt.ParallelFor(memKernel(nil), 100000)
		if err != nil {
			t.Fatal(err)
		}
		if rep.InvocationID <= last {
			t.Fatalf("invocation %d: id %d not increasing past %d", i, rep.InvocationID, last)
		}
		last = rep.InvocationID
		if rep.Started.IsZero() || rep.Finished.Before(rep.Started) {
			t.Fatalf("invocation %d: bad stamps %v..%v", i, rep.Started, rep.Finished)
		}
	}
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d\n%s", url, resp.StatusCode, blob)
	}
	return string(blob)
}
