package eas

import (
	"context"
	"fmt"

	"github.com/hetsched/eas/internal/core"
	"github.com/hetsched/eas/internal/platform"
	"github.com/hetsched/eas/internal/powerchar"
	"github.com/hetsched/eas/internal/wclass"
)

// Platform is a simulated integrated CPU-GPU processor.
type Platform struct {
	inner *platform.Platform
}

// DesktopPlatform returns the Haswell-class desktop of the paper's
// evaluation: a quad-core 3.4 GHz CPU (turbo 3.9 GHz) with an HD
// 4600-class GPU (20 EUs), 25.6 GB/s DDR3, and an 84 W TDP.
func DesktopPlatform() *Platform {
	return &Platform{inner: platform.Desktop()}
}

// TabletPlatform returns the Bay Trail-class tablet: a quad-core
// 1.33 GHz Atom (burst 1.86 GHz) with a 4-EU GPU, 8.5 GB/s LPDDR3, a
// 2.5 W package budget, and a 250 MB CPU-GPU shared-memory limit.
func TabletPlatform() *Platform {
	return &Platform{inner: platform.Tablet()}
}

// PlatformByName resolves "desktop" or "tablet".
func PlatformByName(name string) (*Platform, error) {
	spec, ok := platform.Presets(name)
	if !ok {
		return nil, fmt.Errorf("eas: unknown platform %q (want desktop or tablet)", name)
	}
	p, err := platform.New(spec)
	if err != nil {
		return nil, err
	}
	return &Platform{inner: p}, nil
}

// LoadPlatform builds a platform from a spec JSON file — the format
// `powerchar -dump-spec` emits. Start from a preset's dump, edit the
// device shapes, clocks, power coefficients and budgets, and the whole
// pipeline (characterization, scheduling, evaluation) works on the
// custom processor unchanged: the black-box approach needs no
// per-platform code.
func LoadPlatform(path string) (*Platform, error) {
	spec, err := platform.LoadSpec(path)
	if err != nil {
		return nil, err
	}
	p, err := platform.New(spec)
	if err != nil {
		return nil, err
	}
	return &Platform{inner: p}, nil
}

// Name returns the platform's name.
func (p *Platform) Name() string { return p.inner.Name() }

// GPUProfileSize returns the online profiler's GPU chunk size — the
// GPU's hardware parallelism (2240 on the desktop, 448 on the tablet).
func (p *Platform) GPUProfileSize() int { return p.inner.GPUProfileSize() }

// SetGPUBusy marks the GPU as owned by another application; the runtime
// then falls back to CPU-only execution (the paper's A26-counter check).
func (p *Platform) SetGPUBusy(busy bool) { p.inner.SetGPUBusy(busy) }

// Reset restores the platform to boot state (clock, power-management
// transients, counters, accumulated energy).
func (p *Platform) Reset() { p.inner.Reset() }

// PowerModel is a platform's one-time power characterization: eight
// fitted sixth-order polynomials P(α), one per workload class.
type PowerModel struct {
	inner *powerchar.Model
}

// Characterize runs the paper's §2 procedure on the platform's
// configuration: each of the eight micro-benchmarks is swept across GPU
// offload ratios on a freshly booted instance, average package power is
// measured through the emulated MSR, and a sixth-order polynomial is
// fitted per workload class. The sweeps fan out across CPU cores, and
// the fitted model is memoized process-wide by platform configuration —
// characterizing the same platform twice returns the cached model.
func Characterize(p *Platform) (*PowerModel, error) {
	return CharacterizeCtx(context.Background(), p)
}

// CharacterizeCtx is Characterize with cancellation: a cancelled ctx
// stops the in-flight micro-benchmark sweeps and returns ctx.Err().
func CharacterizeCtx(ctx context.Context, p *Platform) (*PowerModel, error) {
	if p == nil {
		return nil, fmt.Errorf("eas: nil platform")
	}
	m, err := powerchar.Cached(ctx, p.inner.Spec(), powerchar.Options{})
	if err != nil {
		return nil, err
	}
	return &PowerModel{inner: m}, nil
}

// Save writes the model to a JSON file.
func (m *PowerModel) Save(path string) error { return m.inner.Save(path) }

// LoadPowerModel reads a model saved with Save.
func LoadPowerModel(path string) (*PowerModel, error) {
	inner, err := powerchar.Load(path)
	if err != nil {
		return nil, err
	}
	return &PowerModel{inner: inner}, nil
}

// PlatformName returns the platform the model was measured on.
func (m *PowerModel) PlatformName() string { return m.inner.Platform }

// Categories lists the workload-class keys the model covers, e.g.
// "mem-cpuS-gpuL".
func (m *PowerModel) Categories() []string {
	var keys []string
	for _, c := range wclass.All() {
		if _, ok := m.inner.Curve(c); ok {
			keys = append(keys, c.Key())
		}
	}
	return keys
}

// Power predicts average package power (watts) for a workload class at
// GPU offload ratio alpha ∈ [0,1].
func (m *PowerModel) Power(categoryKey string, alpha float64) (float64, error) {
	cat, err := wclass.ParseKey(categoryKey)
	if err != nil {
		return 0, err
	}
	return m.inner.Power(cat, alpha)
}

// Prediction is the analytic model's estimate for one offload ratio.
type Prediction struct {
	// Alpha is the GPU offload ratio.
	Alpha float64
	// PowerW is the predicted average package power.
	PowerW float64
	// Seconds is the predicted execution time (paper eqs. 1-4).
	Seconds float64
	// EnergyJ and EDP are the derived objective values.
	EnergyJ, EDP float64
}

// Predict evaluates the scheduler's internal what-if computation for
// external analysis: given a workload class, the combined-mode device
// throughputs (items/s, as online profiling measures them), and an
// iteration count, it returns the model's power/time/energy/EDP
// estimates across the α grid. The α minimizing any column is what EAS
// would choose for that metric.
func (m *PowerModel) Predict(categoryKey string, rc, rg, n float64) ([]Prediction, error) {
	cat, err := wclass.ParseKey(categoryKey)
	if err != nil {
		return nil, err
	}
	curve, ok := m.inner.Curve(cat)
	if !ok {
		return nil, fmt.Errorf("eas: model has no curve for %s", categoryKey)
	}
	if rc < 0 || rg < 0 || rc+rg == 0 {
		return nil, fmt.Errorf("eas: need non-negative throughputs with at least one device measurable (rc=%v rg=%v)", rc, rg)
	}
	if n <= 0 {
		return nil, fmt.Errorf("eas: non-positive iteration count %v", n)
	}
	tm := core.TimeModel{RC: rc, RG: rg}
	var out []Prediction
	for i := 0; i <= 10; i++ {
		alpha := float64(i) / 10
		t := tm.Time(alpha, n)
		p := curve.Power(alpha)
		out = append(out, Prediction{
			Alpha:   alpha,
			PowerW:  p,
			Seconds: t,
			EnergyJ: p * t,
			EDP:     p * t * t,
		})
	}
	return out, nil
}

// CurveString renders a class's fitted polynomial, in the style the
// paper prints beside each characterization chart.
func (m *PowerModel) CurveString(categoryKey string) (string, error) {
	cat, err := wclass.ParseKey(categoryKey)
	if err != nil {
		return "", err
	}
	c, ok := m.inner.Curve(cat)
	if !ok {
		return "", fmt.Errorf("eas: model has no curve for %s", categoryKey)
	}
	return c.Poly().String(), nil
}
