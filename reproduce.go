package eas

import (
	"fmt"
	"io"

	"github.com/hetsched/eas/internal/report"
)

// ReproducePaper regenerates the paper's entire evaluation — Table 1
// and Figures 9-12 — and writes the rendered tables to w. It is the
// one-call equivalent of `go run ./cmd/easbench` and takes a few
// seconds. Results are deterministic.
func ReproducePaper(w io.Writer) error {
	rows, err := report.Table1(0)
	if err != nil {
		return err
	}
	report.RenderTable1(w, rows)
	fmt.Fprintln(w)
	for _, exp := range []struct{ platform, metric string }{
		{"desktop", "edp"}, {"desktop", "energy"},
		{"tablet", "edp"}, {"tablet", "energy"},
	} {
		fig, err := report.Evaluate(exp.platform, exp.metric, report.Options{})
		if err != nil {
			return err
		}
		if err := fig.Render(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}
