package eas

import (
	"strings"
	"testing"
)

func TestReproducePaper(t *testing.T) {
	if testing.Short() {
		t.Skip("full reproduction takes a couple of seconds")
	}
	var b strings.Builder
	if err := ReproducePaper(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Table 1", "Figure 9", "Figure 10", "Figure 11", "Figure 12", "EAS", "avg"} {
		if !strings.Contains(out, want) {
			t.Errorf("reproduction output missing %q", want)
		}
	}
}
