package eas

import (
	"errors"
	"time"

	"github.com/hetsched/eas/internal/core"
)

// StatePolicy configures durable scheduler state: a crash-safe record
// of the α table — the per-kernel offload ratios, categories, and
// confidence the runtime learns online — so a restart warm-starts from
// what the previous process learned instead of re-profiling every
// kernel from scratch.
//
// The on-disk layout is two files: Path holds an atomic snapshot
// (rewritten by compaction via temp + fsync + rename), and Path+".wal"
// an append-only, CRC-framed log of mutations since. Recovery
// tolerates crashes at any point: a torn WAL tail is truncated,
// corrupt records are skipped and counted (RecoveryStats), and every
// loaded record passes the same evidence sanitization as live
// accumulation before it may influence a scheduling decision.
// Timestamps are preserved across restart, so records stale under
// Config.Decision.TableTTL re-profile exactly as they would have
// without the restart.
//
// Deliberately NOT persisted: coalescer flights, admission queues and
// quotas, breaker state, and meter history — all of it describes
// in-flight or sensor-local conditions that do not outlive a process
// meaningfully.
//
// Persistence failures degrade, never escalate: the first write error
// disables the store for the rest of the run (counted in metrics,
// visible via Runtime.StateDisabled) and scheduling continues from
// memory.
type StatePolicy struct {
	// Path names the snapshot file; the WAL lives at Path+".wal". The
	// parent directory must exist. Empty disables persistence.
	Path string
	// Sync selects WAL durability (default SyncOnCompact).
	Sync StateSync
	// CompactEvery is how many WAL records trigger compaction into a
	// fresh snapshot (default 1024).
	CompactEvery int
	// DrainTimeout bounds how long Runtime.Close waits for in-flight
	// invocations before closing anyway (default 5s).
	DrainTimeout time.Duration
}

// StateSync selects when WAL appends reach stable storage.
type StateSync int

const (
	// SyncOnCompact buffers appends and fsyncs at compaction and Close
	// only: minimal overhead; a hard kill loses the records appended
	// since the last sync (never file integrity — recovery truncates
	// the torn tail).
	SyncOnCompact StateSync = iota
	// SyncAlways fsyncs after every append: a hard kill loses at most
	// the record being written. Use for kill-restart warm starts.
	SyncAlways
)

// ErrClosed is returned by ParallelFor/ParallelForCtx once Runtime.
// Close has begun: the runtime no longer admits invocations.
var ErrClosed = errors.New("eas: runtime is closed")

// RecoveryStats describes one state recovery: what the parser observed
// on disk and what evidence sanitization admitted.
type RecoveryStats struct {
	// SnapshotRecords and WALRecords count cleanly decoded records.
	SnapshotRecords, WALRecords int
	// CorruptRecords counts frames skipped for CRC/framing corruption.
	CorruptRecords int
	// TornTail reports a WAL that ended mid-record — the signature of
	// a crash during an append; TornTailBytes is the truncated length.
	TornTail      bool
	TornTailBytes int
	// StaleWALDiscarded reports a WAL generation older than the
	// snapshot's (crash between compaction's rename and WAL reset);
	// its records were already in the snapshot and were not replayed.
	StaleWALDiscarded bool
	// Loaded counts records admitted into the α table; Rejected those
	// refused by evidence sanitization (non-finite or out-of-range α,
	// zero items, invalid category).
	Loaded, Rejected int
}

func fromCoreRecovery(rs core.RecoveryStats) RecoveryStats {
	return RecoveryStats{
		SnapshotRecords:   rs.SnapshotRecords,
		WALRecords:        rs.WALRecords,
		CorruptRecords:    rs.CorruptRecords,
		TornTail:          rs.TornTail,
		TornTailBytes:     rs.TornTailBytes,
		StaleWALDiscarded: rs.StaleWALDiscarded,
		Loaded:            rs.Loaded,
		Rejected:          rs.Rejected,
	}
}

// StateRecovery returns what this runtime's startup recovery observed
// (the zero value when persistence is off or no state files existed).
func (r *Runtime) StateRecovery() RecoveryStats {
	return fromCoreRecovery(r.sched.StateRecovery())
}

// StateDisabled reports whether a write failure has turned persistence
// off for this run (always false when persistence was never enabled).
func (r *Runtime) StateDisabled() bool { return r.sched.StateDisabled() }

// SaveState writes a point-in-time snapshot of the learned α table to
// path with the same crash-safe discipline compaction uses. It works
// with persistence off — the manual escape hatch for backups and
// migrations — and does not disturb a configured state store.
func (r *Runtime) SaveState(path string) error { return r.sched.SaveState(path) }

// LoadState merges records persisted at path into the live table
// through the standard sanitization gates, returning what recovery
// observed. Snapshot rows overwrite same-name records; WAL deltas
// accumulate into them.
func (r *Runtime) LoadState(path string) (RecoveryStats, error) {
	rs, err := r.sched.LoadState(path)
	if err != nil {
		return RecoveryStats{}, err
	}
	return fromCoreRecovery(rs), nil
}
